package regalloc

import (
	"fmt"

	"prefcolor/internal/costmodel"
	"prefcolor/internal/ig"
	"prefcolor/internal/ir"
	"prefcolor/internal/perfmodel"
	"prefcolor/internal/target"
)

// This file is the end-to-end allocation validity oracle: an
// independent checker that re-derives, from first principles, what a
// correct allocation must look like, and fails loudly when the driver
// output disagrees. The per-round CheckResult validates each coloring
// against its own round's graph; the oracle instead captures the final
// round's function and assignment on the way past and then audits the
// rewritten output as a whole — register ranges, interference,
// sequential-pair legality, limited-usage accounting, calling
// convention, spill-slot dataflow, statistics identities, and
// observable behavior. Tests run allocators through RunChecked instead
// of Run to get every check for free.

// capturingAllocator wraps an Allocator and snapshots the final
// round's context, pre-rewrite function, and result. The driver's
// rewrite mutates ctx.F in place after the last Allocate call, so the
// function must be cloned at capture time.
type capturingAllocator struct {
	inner Allocator
	ctx   *Context
	preF  *ir.Func
	res   *Result
}

func (c *capturingAllocator) Name() string { return c.inner.Name() }

func (c *capturingAllocator) Allocate(ctx *Context) (*Result, error) {
	res, err := c.inner.Allocate(ctx)
	if err == nil && len(res.Spilled) == 0 {
		// Final round: no spills means the driver rewrites next.
		c.ctx, c.preF, c.res = ctx, ctx.F.Clone(), res
	}
	return res, err
}

// RunChecked is Run followed by the full oracle audit. It returns the
// driver's output unchanged; any check failure surfaces as an error
// prefixed "oracle:".
func RunChecked(input *ir.Func, m *target.Machine, alloc Allocator, opts Options) (*ir.Func, *Stats, error) {
	cap := &capturingAllocator{inner: alloc}
	out, stats, err := Run(input, m, cap, opts)
	if err != nil {
		return nil, nil, err
	}
	if cap.ctx == nil {
		return nil, nil, fmt.Errorf("oracle: driver returned without a final round")
	}
	if err := CheckAllocation(input, out, stats, m, cap.ctx, cap.preF, cap.res); err != nil {
		return nil, nil, err
	}
	return out, stats, nil
}

// CheckAllocation runs every oracle check against one completed
// allocation. ctx, preF, and res are the final round's context, the
// pre-rewrite clone of its function, and its coloring.
func CheckAllocation(input, out *ir.Func, stats *Stats, m *target.Machine, ctx *Context, preF *ir.Func, res *Result) error {
	if err := checkPhysOnly(out, m); err != nil {
		return err
	}
	if err := checkInterference(ctx, res); err != nil {
		return err
	}
	if err := checkPairs(out, m, ctx, preF, res); err != nil {
		return err
	}
	if err := checkLimits(out, m, ctx, preF, res); err != nil {
		return err
	}
	if err := checkCallConvention(preF, out); err != nil {
		return err
	}
	if err := checkSpillSlots(out); err != nil {
		return err
	}
	if err := checkStatsIdentities(out, stats); err != nil {
		return err
	}
	return checkSemantics(input, out, m)
}

// checkPhysOnly requires fully-lowered output: no virtual registers
// anywhere and every physical register inside the machine's file.
func checkPhysOnly(out *ir.Func, m *target.Machine) error {
	var bad error
	note := func(b *ir.Block, i int, r ir.Reg) {
		if bad != nil {
			return
		}
		if r.IsVirt() {
			bad = fmt.Errorf("oracle: virtual register %v survives at b%d[%d]", r, b.ID, i)
		} else if r.IsPhys() && r.PhysNum() >= m.NumRegs {
			bad = fmt.Errorf("oracle: register %v out of range (machine has %d) at b%d[%d]", r, m.NumRegs, b.ID, i)
		}
	}
	out.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
		for _, d := range in.Defs {
			note(b, i, d)
		}
		for _, u := range in.Uses {
			note(b, i, u)
		}
	})
	if bad != nil {
		return bad
	}
	for _, p := range out.Params {
		if p.IsVirt() || (p.IsPhys() && p.PhysNum() >= m.NumRegs) {
			return fmt.Errorf("oracle: parameter %v not a machine register", p)
		}
	}
	return nil
}

// checkInterference re-validates the final coloring against the
// original (pre-coalescing) adjacency, independently of the driver's
// optional CheckResult pass: every web colored, in range, and no
// original interference edge monochrome.
func checkInterference(ctx *Context, res *Result) error {
	g, k := ctx.Graph, ctx.K()
	color := make([]int, g.NumNodes())
	for i := 0; i < g.NumPhys(); i++ {
		color[i] = i
	}
	for w := 0; w < g.NumWebs(); w++ {
		n := ig.NodeID(g.NumPhys() + w)
		c, ok := res.ColorOf(g, n)
		if !ok {
			return fmt.Errorf("oracle: web v%d uncolored in the final round", w)
		}
		if c < 0 || c >= k {
			return fmt.Errorf("oracle: web v%d colored out of range: r%d", w, c)
		}
		color[n] = c
	}
	for w := 0; w < g.NumWebs(); w++ {
		n := ig.NodeID(g.NumPhys() + w)
		for _, nb := range g.OrigNeighbors(n) {
			if color[nb] == color[n] {
				return fmt.Errorf("oracle: interfering %v and %v share r%d",
					g.RegOf(n), g.RegOf(nb), color[n])
			}
		}
	}
	return nil
}

// colorOfReg resolves a pre-rewrite operand to its final register.
func colorOfReg(ctx *Context, res *Result, r ir.Reg) (int, bool) {
	if r.IsPhys() {
		return r.PhysNum(), true
	}
	if !r.IsVirt() {
		return -1, false
	}
	return res.ColorOf(ctx.Graph, ctx.Graph.NodeOf(r))
}

// checkPairs requires the output cost model to recognize at least as
// many fused paired loads as the assignment honors: a pre-rewrite
// paired-load candidate whose destinations landed on distinct,
// PairOK registers (and off the base register, mirroring the
// estimator's screen) stays adjacent through the rewrite — copy
// deletion only removes instructions and caller saves only wrap calls
// — so it must be fused in the output.
func checkPairs(out *ir.Func, m *target.Machine, ctx *Context, preF *ir.Func, res *Result) error {
	pairs := costmodel.FindLoadPairs(preF, m, ctx.Loops)
	if len(pairs) == 0 {
		return nil
	}
	honored := 0
	for _, p := range pairs {
		base := preF.Blocks[p.Block].Instrs[p.I1].Uses[0]
		c1, ok1 := colorOfReg(ctx, res, p.Dst1)
		c2, ok2 := colorOfReg(ctx, res, p.Dst2)
		cb, okb := colorOfReg(ctx, res, base)
		if !ok1 || !ok2 || !okb {
			continue
		}
		if c1 != c2 && c1 != cb && m.PairOK(c1, c2) {
			honored++
		}
	}
	est := perfmodel.Estimate(out, m)
	if est.FusedPairs < honored {
		return fmt.Errorf("oracle: assignment honors %d sequential pairs but output fuses only %d",
			honored, est.FusedPairs)
	}
	return nil
}

// checkLimits requires limited-register-usage accounting to be
// consistent end to end: limit sites survive the rewrite one-for-one
// (no machine limits constrain copies or spill ops), so the honored
// and violated counts recomputed from the final colors must equal what
// the estimator sees in the output.
func checkLimits(out *ir.Func, m *target.Machine, ctx *Context, preF *ir.Func, res *Result) error {
	if len(m.Limits) == 0 {
		return nil
	}
	for li := range m.Limits {
		switch m.Limits[li].Op {
		case ir.Move, ir.Nop, ir.SpillLoad, ir.SpillStore:
			// Rewrite and caller-save insertion change these ops'
			// instruction counts, breaking the 1:1 site mapping.
			return nil
		}
	}
	wantHonored, wantViolated := 0, 0
	for _, site := range costmodel.FindLimitSites(preF, m, ctx.Loops) {
		c, ok := colorOfReg(ctx, res, site.Reg)
		if !ok {
			continue
		}
		allowed := false
		for _, a := range site.Allowed {
			if a == c {
				allowed = true
				break
			}
		}
		if allowed {
			wantHonored++
		} else {
			wantViolated++
		}
	}
	est := perfmodel.Estimate(out, m)
	if est.LimitsHonored != wantHonored || est.LimitViolations != wantViolated {
		return fmt.Errorf("oracle: limit accounting mismatch: colors say %d honored/%d violated, output has %d/%d",
			wantHonored, wantViolated, est.LimitsHonored, est.LimitViolations)
	}
	return nil
}

// callSites lists a function's calls in program order.
func callSites(f *ir.Func) []*ir.Instr {
	var out []*ir.Instr
	f.ForEachInstr(func(_ *ir.Block, _ int, in *ir.Instr) {
		if in.Op == ir.Call {
			out = append(out, in)
		}
	})
	return out
}

// checkCallConvention requires every dedicated-register constraint of
// the calling convention to hold: calls survive the rewrite in order,
// and an argument or result that convention lowering pinned to a
// physical register before allocation must sit in that same register
// afterwards.
func checkCallConvention(preF, out *ir.Func) error {
	pre, post := callSites(preF), callSites(out)
	if len(pre) != len(post) {
		return fmt.Errorf("oracle: rewrite changed call count: %d -> %d", len(pre), len(post))
	}
	for i, a := range pre {
		b := post[i]
		if a.Sym != b.Sym || len(a.Uses) != len(b.Uses) || len(a.Defs) != len(b.Defs) {
			return fmt.Errorf("oracle: call %d changed shape: %v -> %v", i, a, b)
		}
		for j, u := range a.Uses {
			if u.IsPhys() && b.Uses[j] != u {
				return fmt.Errorf("oracle: call %d argument %d moved off dedicated %v to %v", i, j, u, b.Uses[j])
			}
		}
		for j, d := range a.Defs {
			if d.IsPhys() && b.Defs[j] != d {
				return fmt.Errorf("oracle: call %d result moved off dedicated %v to %v", i, d, b.Defs[j])
			}
		}
	}
	return nil
}

// checkSpillSlots runs a definite-write forward dataflow over the
// output: along every path, a SpillLoad may only read a slot some
// SpillStore has already written. The interpreter defaults unwritten
// slots to zero, so semantic comparison alone would miss a misplaced
// reload whose garbage value happens not to matter; this structural
// check does not.
func checkSpillSlots(out *ir.Func) error {
	n := out.NumSpillSlots
	if n == 0 {
		return nil
	}
	// written[b][s]: slot s definitely written at entry of block b.
	// Must-analysis: meet is intersection, so non-entry blocks start
	// optimistically full.
	written := make([][]bool, len(out.Blocks))
	for i := range written {
		written[i] = make([]bool, n)
		if i != 0 {
			for s := range written[i] {
				written[i][s] = true
			}
		}
	}
	transfer := func(b *ir.Block, in []bool, report bool) ([]bool, error) {
		cur := append([]bool(nil), in...)
		for i := range b.Instrs {
			ins := &b.Instrs[i]
			switch ins.Op {
			case ir.SpillLoad:
				if s := ins.Imm; report && (s < 0 || s >= int64(n) || !cur[s]) {
					return nil, fmt.Errorf("oracle: b%d[%d] reloads spill slot %d before any store on some path", b.ID, i, s)
				}
			case ir.SpillStore:
				if s := ins.Imm; s >= 0 && s < int64(n) {
					cur[s] = true
				}
			}
		}
		return cur, nil
	}
	for changed := true; changed; {
		changed = false
		for _, b := range out.Blocks {
			in := written[b.ID]
			o, _ := transfer(b, in, false)
			for _, s := range b.Succs {
				for i := range written[s] {
					if written[s][i] && !o[i] {
						written[s][i] = false
						changed = true
					}
				}
			}
		}
	}
	for _, b := range out.Blocks {
		if _, err := transfer(b, written[b.ID], true); err != nil {
			return err
		}
	}
	return nil
}

// checkStatsIdentities cross-checks the reported statistics against a
// recount of the output.
func checkStatsIdentities(out *ir.Func, stats *Stats) error {
	if stats.MovesBefore != stats.MovesEliminated+stats.MovesRemaining {
		return fmt.Errorf("oracle: move identity broken: %d before != %d eliminated + %d remaining",
			stats.MovesBefore, stats.MovesEliminated, stats.MovesRemaining)
	}
	if got := out.CountOp(ir.Move); got != stats.MovesRemaining {
		return fmt.Errorf("oracle: output has %d moves, stats say %d remain", got, stats.MovesRemaining)
	}
	loads, stores := 0, 0
	out.ForEachInstr(func(_ *ir.Block, _ int, in *ir.Instr) {
		switch {
		case in.Op == ir.SpillLoad && in.Sym != callerSaveTag:
			loads++
		case in.Op == ir.SpillStore && in.Sym != callerSaveTag:
			stores++
		case in.Op == ir.SpillLoad:
			// caller-save reload
		}
	})
	if loads != stats.SpillLoads || stores != stats.SpillStores {
		return fmt.Errorf("oracle: output has %d/%d spill loads/stores, stats say %d/%d",
			loads, stores, stats.SpillLoads, stats.SpillStores)
	}
	return nil
}

// checkSemantics interprets input and output under call-clobbering
// semantics on two parameter bases and requires identical observable
// behavior: return value and the full store trace.
func checkSemantics(input, out *ir.Func, m *target.Machine) error {
	opts := ir.InterpOptions{CallClobbers: m.CallClobbers()}
	for _, base := range []int64{0, 3} {
		init, outInit := map[ir.Reg]int64{}, map[ir.Reg]int64{}
		for i, p := range input.Params {
			init[p] = base + int64(i)
			outInit[out.Params[i]] = base + int64(i)
		}
		a, err := ir.Interp(input, init, opts)
		if err != nil {
			// The input failing to execute (a non-terminating program,
			// typically) is not an allocation defect; the structural
			// checks have already run, so skip the behavioral one.
			return nil
		}
		b, err := ir.Interp(out, outInit, opts)
		if err != nil {
			return fmt.Errorf("oracle: interpreting output: %w", err)
		}
		if a.HasRet != b.HasRet || a.Ret != b.Ret {
			return fmt.Errorf("oracle: base %d: return differs: input (%v, %d) output (%v, %d)",
				base, a.HasRet, a.Ret, b.HasRet, b.Ret)
		}
		if len(a.Stores) != len(b.Stores) {
			return fmt.Errorf("oracle: base %d: store count differs: %d vs %d", base, len(a.Stores), len(b.Stores))
		}
		for i := range a.Stores {
			if a.Stores[i] != b.Stores[i] {
				return fmt.Errorf("oracle: base %d: store %d differs: %+v vs %+v", base, i, a.Stores[i], b.Stores[i])
			}
		}
	}
	return nil
}
