package regalloc_test

import (
	"testing"

	"prefcolor/internal/ig"
	"prefcolor/internal/regalloc"
)

func TestAggressiveCoalesce(t *testing.T) {
	g := ig.NewGraph(0, 4)
	g.AddEdge(0, 1)
	g.AddMove(0, 2, 1) // coalescable
	g.AddMove(0, 1, 1) // constrained (interfering)
	g.AddMove(2, 3, 1) // becomes 0-3 after first coalesce
	g.Freeze()
	n := regalloc.AggressiveCoalesce(g)
	if n != 2 {
		t.Errorf("coalesces = %d, want 2", n)
	}
	if g.Find(2) != 0 || g.Find(3) != 0 {
		t.Errorf("aliases: Find(2)=%d Find(3)=%d, want 0", g.Find(2), g.Find(3))
	}
	if g.Find(1) != 1 {
		t.Error("interfering move was coalesced")
	}
}

func TestBriggsConservative(t *testing.T) {
	// Star: center 0 adjacent to 1..4; K=3. Coalescing 5 and 6 (both
	// adjacent to low-degree leaves only) is safe; coalescing nodes
	// that would create >= K significant neighbors is not.
	g := ig.NewGraph(0, 8)
	for i := 1; i <= 4; i++ {
		g.AddEdge(0, ig.NodeID(i))
	}
	// 5 and 6 are isolated: merging them yields no significant
	// neighbors at all.
	g.Freeze()
	if !regalloc.BriggsConservative(g, 5, 6, 3) {
		t.Error("isolated pair rejected")
	}
	// 7 adjacent to the significant-degree center 0 plus two leaves.
	g.AddEdge(7, 0)
	g.AddEdge(7, 1)
	g.AddEdge(5, 2)
	g.AddEdge(5, 3)
	// Merged node 5+7 would have neighbors {0,1,2,3}: only node 0 has
	// degree >= 3 → 1 significant < K → safe under Briggs.
	if !regalloc.BriggsConservative(g, 5, 7, 3) {
		t.Error("merge with one significant neighbor rejected at K=3")
	}
	if regalloc.BriggsConservative(g, 5, 7, 1) {
		t.Error("merge accepted at K=1 despite a significant neighbor")
	}
}

func TestGeorgeConservative(t *testing.T) {
	// Coalescing web 3 into phys 0 (K=2): every neighbor of 3 must
	// either interfere with 0 already or be insignificant.
	g := ig.NewGraph(2, 4)
	g.AddEdge(3, 4) // 4: degree 1, insignificant at K=2
	g.Freeze()
	if !regalloc.GeorgeConservative(g, 3, 0, 2) {
		t.Error("safe phys coalesce rejected")
	}
	// Now 4 becomes significant and does not interfere with 0.
	g.AddEdge(4, 5)
	g.AddEdge(4, 3) // no-op, already there
	if regalloc.GeorgeConservative(g, 3, 0, 2) {
		t.Error("unsafe phys coalesce accepted")
	}
}

func TestSpillCandidatePicksCheapestPerDegree(t *testing.T) {
	g := ig.NewGraph(0, 3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.SetSpillCost(0, 100) // degree 2 → 50
	g.SetSpillCost(1, 10)  // degree 2 → 5
	g.SetSpillCost(2, 60)  // degree 2 → 30
	if got := regalloc.SpillCandidate(g); got != 1 {
		t.Errorf("candidate = %d, want 1", got)
	}
	g.Remove(1)
	g.Remove(0)
	g.Remove(2)
	if got := regalloc.SpillCandidate(g); got != -1 {
		t.Errorf("empty graph candidate = %d, want -1", got)
	}
}

func TestColoringAvailable(t *testing.T) {
	g := ig.NewGraph(2, 2) // phys 0,1; webs 2,3
	g.AddEdge(2, 0)        // web 2 conflicts with r0
	g.AddEdge(2, 3)
	g.Freeze()
	c := regalloc.NewColoring(g)
	c.Set(3, 1)
	avail := c.Available(2, 2)
	if len(avail) != 0 {
		t.Errorf("avail = %v, want none (r0 phys conflict, r1 taken by web 3)", avail)
	}
	c.Set(3, -1)
	// Un-setting is not part of the API; rebuild instead.
	c2 := regalloc.NewColoring(g)
	if got := c2.Available(2, 2); len(got) != 1 || got[0] != 1 {
		t.Errorf("avail = %v, want [1]", got)
	}
}

func TestBiasedPickPrefersHeaviestPartner(t *testing.T) {
	g := ig.NewGraph(0, 3)
	g.AddMove(0, 1, 1)
	g.AddMove(0, 2, 10)
	g.Freeze()
	c := regalloc.NewColoring(g)
	c.Set(1, 3)
	c.Set(2, 5)
	got := regalloc.BiasedPick(g, c, 0, []int{2, 3, 5})
	if got != 5 {
		t.Errorf("BiasedPick = %d, want 5 (the heavier copy partner)", got)
	}
	// Partner colors unavailable: falls back to first candidate.
	got = regalloc.BiasedPick(g, c, 0, []int{2, 4})
	if got != 2 {
		t.Errorf("fallback = %d, want 2", got)
	}
}

func TestNodeBenefitsAggregatesMembers(t *testing.T) {
	// Covered end to end by the callcost tests; here check the
	// phys-member edge case: a web coalesced into a physical node
	// contributes nothing for the physical member itself.
	g := ig.NewGraph(2, 2)
	g.Freeze()
	rep := g.Coalesce(2, 0) // web 2 into phys 0
	if rep != 0 {
		t.Fatalf("rep = %d", rep)
	}
	// NodeBenefits needs a Context; the cheap path: benefits of a
	// phys rep must not panic and must reflect only web members.
	// (Constructing a full Context here is overkill; the public
	// behavior is pinned by the callcost integration tests.)
}
