package regalloc_test

import (
	"testing"

	"prefcolor/internal/ir"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/regalloc/chaitin"
	"prefcolor/internal/target"
	"prefcolor/internal/workload"
)

// rematSrc keeps a constant live across a high-pressure region on a
// tiny machine: the constant is the cheapest spill victim, and with
// rematerialization on, no spill slot should be used for it.
const rematSrc = `
func f(v0) {
b0:
  v1 = loadimm 7
  v2 = add v0, v0
  v3 = add v0, v2
  v4 = add v0, v3
  v5 = add v2, v3
  v6 = add v5, v4
  v7 = add v6, v0
  v8 = add v7, v2
  v9 = add v8, v1
  ret v9
}
`

func TestRematerializationAvoidsSpillTraffic(t *testing.T) {
	f := ir.MustParse(rematSrc)
	m := target.UsageModel(4)
	plain, sPlain, err := regalloc.Run(f, m, chaitin.New(), regalloc.Options{})
	if err != nil {
		t.Fatalf("plain: %v", err)
	}
	remat, sRemat, err := regalloc.Run(f, m, chaitin.New(), regalloc.Options{Rematerialize: true})
	if err != nil {
		t.Fatalf("remat: %v", err)
	}
	if sPlain.SpillInstrs() == 0 {
		t.Skip("machine too large to force a spill; test needs pressure")
	}
	if sRemat.Remats == 0 {
		t.Fatalf("no rematerialization happened: %+v", sRemat)
	}
	if sRemat.SpillInstrs() >= sPlain.SpillInstrs() {
		t.Errorf("remat spill instrs %d, plain %d; expected a reduction",
			sRemat.SpillInstrs(), sPlain.SpillInstrs())
	}
	// Both must compute the same value.
	for _, in := range []int64{0, 5, -3} {
		a, err := ir.Interp(plain, map[ir.Reg]int64{plain.Params[0]: in}, ir.InterpOptions{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := ir.Interp(remat, map[ir.Reg]int64{remat.Params[0]: in}, ir.InterpOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if a.Ret != b.Ret {
			t.Errorf("input %d: %d vs %d", in, a.Ret, b.Ret)
		}
	}
}

func TestRematerializationSkipsNonConstants(t *testing.T) {
	// v1 is defined by an add: not rematerializable; spilling must
	// fall back to slots, and results stay correct.
	src := `
func f(v0) {
b0:
  v1 = add v0, v0
  v2 = add v0, v1
  v3 = add v0, v2
  v4 = add v0, v3
  v5 = add v2, v3
  v6 = add v5, v4
  v7 = add v6, v0
  v8 = add v7, v2
  v9 = add v8, v1
  ret v9
}
`
	f := ir.MustParse(src)
	m := target.UsageModel(4)
	out, stats, err := regalloc.Run(f, m, chaitin.New(), regalloc.Options{Rematerialize: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.Remats != 0 {
		t.Errorf("rematerialized a non-constant web: %+v", stats)
	}
	a, _ := ir.Interp(f, map[ir.Reg]int64{f.Params[0]: 4}, ir.InterpOptions{})
	b, _ := ir.Interp(out, map[ir.Reg]int64{out.Params[0]: 4}, ir.InterpOptions{})
	if a.Ret != b.Ret {
		t.Errorf("semantics changed: %d vs %d", a.Ret, b.Ret)
	}
}

func TestRematerializationMixedDefsNotRemat(t *testing.T) {
	// A web with one loadimm def and one add def reaching a common
	// use must not be rematerialized.
	src := `
func f(v0) {
b0:
  branch v0, b1, b2
b1:
  v1 = loadimm 7
  jump b3
b2:
  v1 = add v0, v0
  jump b3
b3:
  v2 = add v1, v1
  v3 = add v0, v0
  v4 = add v0, v3
  v5 = add v3, v4
  v6 = add v5, v2
  ret v6
}
`
	f := ir.MustParse(src)
	m := target.UsageModel(4)
	out, _, err := regalloc.Run(f, m, chaitin.New(), regalloc.Options{Rematerialize: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, in := range []int64{0, 1, 9} {
		a, _ := ir.Interp(f, map[ir.Reg]int64{f.Params[0]: in}, ir.InterpOptions{})
		b, _ := ir.Interp(out, map[ir.Reg]int64{out.Params[0]: in}, ir.InterpOptions{})
		if a.Ret != b.Ret {
			t.Errorf("input %d: %d vs %d", in, a.Ret, b.Ret)
		}
	}
}

// forceSpill spills one chosen web on the first round, then behaves
// like its inner allocator — a deterministic way to compare spill-code
// strategies on the same victim.
type forceSpill struct {
	inner regalloc.Allocator
	web   int
	done  bool
}

func (fs *forceSpill) Name() string { return "force-spill" }

func (fs *forceSpill) Allocate(ctx *regalloc.Context) (*regalloc.Result, error) {
	if !fs.done {
		fs.done = true
		res := regalloc.NewResult()
		res.Spilled = append(res.Spilled, ctx.Graph.NodeOf(ir.Virt(fs.web)))
		return res, nil
	}
	return fs.inner.Allocate(ctx)
}

// TestBlockLocalSpillsReduceLoads: the victim is defined once and used
// three times in a later block. Spill-everywhere pays one store plus
// three loads; block-local spilling pays one store plus one load.
func TestBlockLocalSpillsReduceLoads(t *testing.T) {
	src := `
func f(v0) {
b0:
  v1 = add v0, v0
  jump b1
b1:
  v2 = add v1, v0
  v3 = add v2, v1
  v4 = add v3, v1
  ret v4
}
`
	m := target.UsageModel(8)
	// v1 is web 1 after renumbering (v0 the parameter is web 0).
	f1 := ir.MustParse(src)
	plain, sPlain, err := regalloc.Run(f1, m, &forceSpill{inner: chaitin.New(), web: 1}, regalloc.Options{})
	if err != nil {
		t.Fatalf("plain: %v", err)
	}
	f2 := ir.MustParse(src)
	local, sLocal, err := regalloc.Run(f2, m, &forceSpill{inner: chaitin.New(), web: 1}, regalloc.Options{BlockLocalSpills: true})
	if err != nil {
		t.Fatalf("block-local: %v", err)
	}
	if sPlain.SpillInstrs() != 4 {
		t.Errorf("spill-everywhere instrs = %d, want 4 (1 store + 3 loads)", sPlain.SpillInstrs())
	}
	if sLocal.SpillInstrs() != 2 {
		t.Errorf("block-local instrs = %d, want 2 (1 store + 1 load)\n%s", sLocal.SpillInstrs(), local)
	}
	for _, in := range []int64{0, 3, -5} {
		a, err := ir.Interp(plain, map[ir.Reg]int64{plain.Params[0]: in}, ir.InterpOptions{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := ir.Interp(local, map[ir.Reg]int64{local.Params[0]: in}, ir.InterpOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if a.Ret != b.Ret {
			t.Errorf("input %d: %d vs %d", in, a.Ret, b.Ret)
		}
	}
}

func TestBlockLocalSpillsAcrossBlocks(t *testing.T) {
	// The spilled value crosses blocks: each block reloads from the
	// slot, and a written block stores back before its terminator.
	src := `
func f(v0) {
b0:
  v1 = add v0, v0
  v2 = add v0, v1
  v3 = add v0, v2
  v4 = add v0, v3
  v5 = add v2, v3
  branch v0, b1, b2
b1:
  v1 = add v1, v4
  jump b2
b2:
  v6 = add v1, v5
  v7 = add v6, v4
  v8 = add v7, v2
  ret v8
}
`
	f := ir.MustParse(src)
	m := target.UsageModel(4)
	out, _, err := regalloc.Run(f, m, chaitin.New(), regalloc.Options{BlockLocalSpills: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, in := range []int64{0, 1, 7} {
		a, err := ir.Interp(f, map[ir.Reg]int64{f.Params[0]: in}, ir.InterpOptions{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := ir.Interp(out, map[ir.Reg]int64{out.Params[0]: in}, ir.InterpOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if a.Ret != b.Ret {
			t.Errorf("input %d: %d vs %d\n%s", in, a.Ret, b.Ret, out)
		}
	}
}

// TestBlockLocalSpillsFuzz drives every allocator with block-local
// spilling over random programs on a tiny machine.
func TestBlockLocalSpillsFuzz(t *testing.T) {
	m := target.UsageModel(4)
	opts := ir.InterpOptions{CallClobbers: m.CallClobbers()}
	for seed := int64(1); seed <= 20; seed++ {
		raw := workload.GenerateRawFunc(fuzzProfile, m, seed)
		out, _, err := regalloc.Run(raw, m, chaitin.New(), regalloc.Options{BlockLocalSpills: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		init, outInit := map[ir.Reg]int64{}, map[ir.Reg]int64{}
		for i, p := range raw.Params {
			init[p] = seed + int64(i)
			outInit[out.Params[i]] = seed + int64(i)
		}
		a, err := ir.Interp(raw, init, opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := ir.Interp(out, outInit, opts)
		if err != nil {
			t.Fatalf("seed %d: interp out: %v", seed, err)
		}
		if a.HasRet != b.HasRet || a.Ret != b.Ret || len(a.Stores) != len(b.Stores) {
			t.Errorf("seed %d: behavior changed", seed)
		}
	}
}
