package regalloc_test

import (
	"strings"
	"testing"

	"prefcolor/internal/ir"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/regalloc/chaitin"
	"prefcolor/internal/target"
)

// checkEquiv runs input and output under machine semantics (calls
// clobber volatile registers) and fails on any observable difference.
// Each init map is keyed by the *input's* registers; entries naming a
// parameter are re-keyed to the output's corresponding parameter
// (allocation renames parameters onto physical registers).
func checkEquiv(t *testing.T, m *target.Machine, input, output *ir.Func, inits []map[ir.Reg]int64) {
	t.Helper()
	opts := ir.InterpOptions{CallClobbers: m.CallClobbers()}
	for _, init := range inits {
		outInit := make(map[ir.Reg]int64, len(init))
		for r, v := range init {
			mapped := r
			for pi, p := range input.Params {
				if p == r {
					mapped = output.Params[pi]
					break
				}
			}
			outInit[mapped] = v
		}
		a, err := ir.Interp(input, init, opts)
		if err != nil {
			t.Fatalf("interp input: %v", err)
		}
		b, err := ir.Interp(output, outInit, opts)
		if err != nil {
			t.Fatalf("interp output: %v", err)
		}
		if a.HasRet != b.HasRet || a.Ret != b.Ret {
			t.Errorf("init %v: ret %d/%v vs %d/%v\noutput:\n%s", init, a.Ret, a.HasRet, b.Ret, b.HasRet, output)
		}
		if len(a.Stores) != len(b.Stores) {
			t.Errorf("init %v: %d stores vs %d", init, len(a.Stores), len(b.Stores))
			continue
		}
		for i := range a.Stores {
			if a.Stores[i] != b.Stores[i] {
				t.Errorf("init %v: store %d differs: %+v vs %+v", init, i, a.Stores[i], b.Stores[i])
			}
		}
	}
}

// noVirtRegs asserts the output uses only physical registers.
func noVirtRegs(t *testing.T, f *ir.Func) {
	t.Helper()
	f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
		for _, r := range in.Defs {
			if r.IsVirt() {
				t.Fatalf("b%d:%d: virtual register %v survived allocation", b.ID, i, r)
			}
		}
		for _, r := range in.Uses {
			if r.IsVirt() {
				t.Fatalf("b%d:%d: virtual register %v survived allocation", b.ID, i, r)
			}
		}
	})
}

func TestChaitinStraightLine(t *testing.T) {
	src := `
func f(v0, v1) {
b0:
  v2 = add v0, v1
  v3 = mul v2, v0
  v4 = sub v3, v1
  ret v4
}
`
	f := ir.MustParse(src)
	m := target.UsageModel(16)
	out, stats, err := regalloc.Run(f, m, chaitin.New(), regalloc.Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	noVirtRegs(t, out)
	if stats.SpillInstrs() != 0 {
		t.Errorf("spills = %d, want 0", stats.SpillInstrs())
	}
	checkEquiv(t, m, f, out, []map[ir.Reg]int64{
		{f.Params[0]: 3, f.Params[1]: 4},
		{f.Params[0]: -1, f.Params[1]: 100},
	})
}

func TestChaitinCoalescesCopies(t *testing.T) {
	src := `
func f(v0) {
b0:
  v1 = move v0
  v2 = move v1
  v3 = add v2, v2
  ret v3
}
`
	f := ir.MustParse(src)
	m := target.UsageModel(16)
	out, stats, err := regalloc.Run(f, m, chaitin.New(), regalloc.Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.MovesRemaining != 0 {
		t.Errorf("moves remaining = %d, want 0 (aggressive coalescing)\n%s", stats.MovesRemaining, out)
	}
	if stats.MovesEliminated != 2 {
		t.Errorf("moves eliminated = %d, want 2", stats.MovesEliminated)
	}
	checkEquiv(t, m, f, out, []map[ir.Reg]int64{{f.Params[0]: 21}})
}

func TestChaitinSpillsUnderPressure(t *testing.T) {
	// 6 simultaneously-live values on a 4-register machine (one of
	// which has the clique plus the param) must spill.
	src := `
func f(v0) {
b0:
  v1 = add v0, v0
  v2 = add v0, v1
  v3 = add v0, v2
  v4 = add v0, v3
  v5 = add v0, v4
  v6 = add v1, v2
  v7 = add v6, v3
  v8 = add v7, v4
  v9 = add v8, v5
  v10 = add v9, v0
  ret v10
}
`
	f := ir.MustParse(src)
	m := target.UsageModel(4)
	out, stats, err := regalloc.Run(f, m, chaitin.New(), regalloc.Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	noVirtRegs(t, out)
	if stats.SpillInstrs() == 0 {
		t.Error("expected spill code on a 4-register machine")
	}
	if stats.Rounds < 2 {
		t.Errorf("rounds = %d, want >= 2", stats.Rounds)
	}
	checkEquiv(t, m, f, out, []map[ir.Reg]int64{{f.Params[0]: 2}, {f.Params[0]: -7}})
}

func TestCallerSaveInsertion(t *testing.T) {
	// v1 lives across a call. On a machine where the allocator may
	// give it a volatile register, rewrite must insert save/restore.
	src := `
func f(v0) {
b0:
  v1 = add v0, v0
  call @g
  v2 = add v1, v1
  ret v2
}
`
	f := ir.MustParse(src)
	m := target.UsageModel(16)
	out, stats, err := regalloc.Run(f, m, chaitin.New(), regalloc.Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Either the web went to a non-volatile register (no saves) or to
	// a volatile one (saves present) — both must run correctly.
	checkEquiv(t, m, f, out, []map[ir.Reg]int64{{f.Params[0]: 5}})
	if stats.CallerSaveStores != stats.CallerSaveLoads {
		t.Errorf("caller saves %d != restores %d", stats.CallerSaveStores, stats.CallerSaveLoads)
	}
}

func TestCallerSaveForcedVolatile(t *testing.T) {
	// Fill all non-volatile registers with call-crossing webs so at
	// least one lands in a volatile register: saves must appear and
	// semantics must hold despite the clobbering interpreter.
	var sb strings.Builder
	sb.WriteString("func f(v0) {\nb0:\n")
	n := 10
	for i := 1; i <= n; i++ {
		sb.WriteString("  v")
		sb.WriteByte(byte('0' + i/10))
		if i >= 10 {
			sb.WriteByte(byte('0' + i%10))
		}
		sb.WriteString(" = add v0, v0\n")
	}
	_ = sb
	src := `
func f(v0) {
b0:
  v1 = add v0, v0
  v2 = add v0, v1
  v3 = add v0, v2
  v4 = add v0, v3
  v5 = add v0, v4
  call @g
  v6 = add v1, v2
  v7 = add v6, v3
  v8 = add v7, v4
  v9 = add v8, v5
  ret v9
}
`
	f := ir.MustParse(src)
	m := target.UsageModel(8) // 4 volatile, 4 non-volatile
	out, stats, err := regalloc.Run(f, m, chaitin.New(), regalloc.Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkEquiv(t, m, f, out, []map[ir.Reg]int64{{f.Params[0]: 3}, {f.Params[0]: 11}})
	t.Logf("stats: %+v", stats)
	if stats.CallerSaveStores == 0 && stats.SpillInstrs() == 0 {
		t.Error("expected caller saves or spills with 6 call-crossing webs on 4 non-volatile registers")
	}
}

func TestLoopAllocation(t *testing.T) {
	src := `
func f(v0) {
b0:
  v1 = loadimm 0
  v2 = loadimm 0
  jump b1
b1:
  v3 = cmp v2, v0
  branch v3, b2, b3
b2:
  v1 = add v1, v2
  v4 = loadimm 1
  v2 = add v2, v4
  jump b1
b3:
  ret v1
}
`
	f := ir.MustParse(src)
	m := target.UsageModel(16)
	out, _, err := regalloc.Run(f, m, chaitin.New(), regalloc.Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	noVirtRegs(t, out)
	checkEquiv(t, m, f, out, []map[ir.Reg]int64{
		{f.Params[0]: 0}, {f.Params[0]: 1}, {f.Params[0]: 10},
	})
}

func TestConventionLoweredCode(t *testing.T) {
	// Code with explicit convention moves: params arrive in r0/r1,
	// result leaves in r0, a call takes args in r0.
	src := `
func f() {
b0:
  v0 = move r0
  v1 = move r1
  v2 = add v0, v1
  r0 = move v2
  v3 = call @g r0
  v4 = add v3, v0
  r0 = move v4
  ret r0
}
`
	f := ir.MustParse(src)
	m := target.UsageModel(16)
	out, stats, err := regalloc.Run(f, m, chaitin.New(), regalloc.Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	noVirtRegs(t, out)
	checkEquiv(t, m, f, out, []map[ir.Reg]int64{
		{ir.Phys(0): 7, ir.Phys(1): 9},
		{ir.Phys(0): -2, ir.Phys(1): 0},
	})
	t.Logf("convention-lowered: %+v", stats)
}

func TestDriverStatsConsistency(t *testing.T) {
	src := `
func f(v0) {
b0:
  v1 = move v0
  v2 = add v1, v0
  ret v2
}
`
	f := ir.MustParse(src)
	m := target.UsageModel(16)
	_, stats, err := regalloc.Run(f, m, chaitin.New(), regalloc.Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.MovesBefore != stats.MovesEliminated+stats.MovesRemaining {
		t.Errorf("moves identity violated: %+v", stats)
	}
	if stats.Allocator != "chaitin" {
		t.Errorf("allocator name = %q", stats.Allocator)
	}
	if stats.UsedRegs == 0 {
		t.Error("UsedRegs = 0")
	}
}

func TestInputNotMutated(t *testing.T) {
	src := `
func f(v0) {
b0:
  v1 = move v0
  ret v1
}
`
	f := ir.MustParse(src)
	before := f.String()
	m := target.UsageModel(16)
	if _, _, err := regalloc.Run(f, m, chaitin.New(), regalloc.Options{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if f.String() != before {
		t.Error("Run mutated its input")
	}
}
