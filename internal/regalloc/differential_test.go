package regalloc_test

import (
	"testing"

	"prefcolor/internal/perfmodel"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/target"
	"prefcolor/internal/workload"
)

// The differential tests pin the paper's comparative claims against
// the Chaitin baseline on banks of random programs, with every
// allocation on both sides audited by the end-to-end oracle
// (RunChecked). Two regimes matter:
//
//   - Without register pressure, deferred coalescing must be lossless:
//     every copy Chaitin's aggressive pre-coalescing eliminates, the
//     preference-directed selector must eliminate too. Under pressure
//     the comparison is ill-posed — the paper's allocator deliberately
//     breaks copies to avoid spills, which is the point — so the
//     per-seed assertion runs on a roomy machine.
//
//   - Under pressure, the full allocator competes on its actual
//     objective, the Appendix cost model: aggregate estimated cycles
//     must not exceed Chaitin's.

func diffSeeds(t *testing.T) int64 {
	if testing.Short() {
		return 10
	}
	return 40
}

// TestDifferentialCoalesceNeverWorse: on a machine wide enough that
// nothing spills, pref-coalesce must never honor fewer coalesce edges
// than Chaitin — seed by seed, not just in aggregate.
func TestDifferentialCoalesceNeverWorse(t *testing.T) {
	m := target.UsageModel(24)
	for seed := int64(1); seed <= diffSeeds(t); seed++ {
		raw := workload.GenerateRawFunc(fuzzProfile, m, seed)
		_, ps, err := regalloc.RunChecked(raw, m, allocatorByName(t, "pref-coalesce"), regalloc.Options{})
		if err != nil {
			t.Fatalf("seed %d pref-coalesce: %v", seed, err)
		}
		_, cs, err := regalloc.RunChecked(raw, m, allocatorByName(t, "chaitin"), regalloc.Options{})
		if err != nil {
			t.Fatalf("seed %d chaitin: %v", seed, err)
		}
		if ps.MovesEliminated < cs.MovesEliminated {
			t.Errorf("seed %d: pref-coalesce eliminated %d moves, chaitin %d — deferred coalescing dropped a resolution",
				seed, ps.MovesEliminated, cs.MovesEliminated)
		}
		if ps.MovesBefore != cs.MovesBefore {
			t.Fatalf("seed %d: allocators saw different inputs (%d vs %d moves)", seed, ps.MovesBefore, cs.MovesBefore)
		}
	}
}

// TestDifferentialFullBeatsChaitinOnCycles: under register pressure,
// the full preference system must not lose to Chaitin on the paper's
// cost model in aggregate (Figures 10/11's direction). Individual
// seeds may go either way; the bank may not.
func TestDifferentialFullBeatsChaitinOnCycles(t *testing.T) {
	for _, k := range []int{8, 24} {
		m := target.UsageModel(k)
		var prefCycles, chaitinCycles float64
		for seed := int64(1); seed <= diffSeeds(t); seed++ {
			raw := workload.GenerateRawFunc(fuzzProfile, m, seed)
			po, _, err := regalloc.RunChecked(raw, m, allocatorByName(t, "pref-full"), regalloc.Options{})
			if err != nil {
				t.Fatalf("k=%d seed %d pref-full: %v", k, seed, err)
			}
			co, _, err := regalloc.RunChecked(raw, m, allocatorByName(t, "chaitin"), regalloc.Options{})
			if err != nil {
				t.Fatalf("k=%d seed %d chaitin: %v", k, seed, err)
			}
			prefCycles += perfmodel.Estimate(po, m).Cycles
			chaitinCycles += perfmodel.Estimate(co, m).Cycles
		}
		t.Logf("k=%d: pref-full %.0f estimated cycles, chaitin %.0f", k, prefCycles, chaitinCycles)
		if prefCycles > chaitinCycles {
			t.Errorf("k=%d: pref-full estimated %.0f cycles, chaitin %.0f — full preferences lost on the cost model",
				k, prefCycles, chaitinCycles)
		}
	}
}
