package metamorph

import (
	"path/filepath"
	"testing"

	"prefcolor/internal/bench"
	"prefcolor/internal/core"
	"prefcolor/internal/ir"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/target"
)

// diffSelectCase runs f through alloc with the incremental selector
// and with the retained reference oracle, requiring a bit-identical
// digest and identical driver statistics.
func diffSelectCase(t *testing.T, f *ir.Func, m *target.Machine, alloc *core.Allocator, label string) {
	t.Helper()
	outF, statsF, err := regalloc.Run(f, m, alloc, regalloc.Options{})
	if err != nil {
		t.Fatalf("%s: incremental: %v", label, err)
	}
	outR, statsR, err := regalloc.Run(f, m, alloc.WithReferenceSelector(), regalloc.Options{})
	if err != nil {
		t.Fatalf("%s: reference: %v", label, err)
	}
	if df, dr := bench.FuncDigest(f.Name, statsF, outF), bench.FuncDigest(f.Name, statsR, outR); df != dr {
		t.Errorf("%s: digest diverged from reference selector:\n  incremental %s\n  reference   %s", label, df, dr)
	}
	sf, sr := *statsF, *statsR
	sf.Telemetry, sr.Telemetry = nil, nil
	if sf != sr {
		t.Errorf("%s: stats diverged from reference selector:\n  incremental %+v\n  reference   %+v", label, sf, sr)
	}
}

// TestSelectorMatchesReferenceCorpus replays every corpus reproducer
// — programs that each broke some allocator configuration once —
// through the incremental-vs-reference selector check, on the corpus
// case's own recorded machine. Complements the workload-profile sweep
// in internal/bench with the adversarial shapes the matrix shrank.
func TestSelectorMatchesReferenceCorpus(t *testing.T) {
	cases, err := LoadCorpus(filepath.Join("testdata", "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) == 0 {
		t.Skip("empty corpus")
	}
	machines := map[string]*target.Machine{}
	for _, m := range Machines() {
		machines[m.Name] = m
	}
	for _, c := range cases {
		m, ok := machines[c.Machine]
		if !ok {
			t.Fatalf("%s: machine %q not in Machines()", c.File, c.Machine)
		}
		diffSelectCase(t, c.F, m, core.New(), c.File+"/pref-full")
		diffSelectCase(t, c.F, m, core.NewCoalesceOnly(), c.File+"/pref-coalesce")
	}
}
