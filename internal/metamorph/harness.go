package metamorph

import (
	"fmt"
	"math"
	"math/rand"

	"prefcolor/internal/bench"
	"prefcolor/internal/core"
	"prefcolor/internal/ir"
	"prefcolor/internal/linearscan"
	"prefcolor/internal/perfmodel"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/regalloc/briggs"
	"prefcolor/internal/regalloc/callcost"
	"prefcolor/internal/regalloc/chaitin"
	"prefcolor/internal/regalloc/iterated"
	"prefcolor/internal/regalloc/optimistic"
	"prefcolor/internal/regalloc/priority"
	"prefcolor/internal/target"
	"prefcolor/internal/workload"
)

// Machines returns the machine models the matrix runs against: one
// parity-paired usage model, one sequential-paired model, and one
// limit-heavy model (low-quarter mul operands plus an IA-64-style
// addimm immediate-width limit).
func Machines() []*target.Machine {
	return []*target.Machine{
		target.UsageModel(8),
		target.S390Like(8),
		target.X86Like(8).WithIA64AddImmLimit(),
	}
}

// Cell is one allocator configuration of the differential matrix.
type Cell struct {
	Name  string
	Alloc regalloc.Allocator
	Opts  regalloc.Options

	// MaxLevel caps how strictly this cell is graded: a transform's
	// invariance level is clamped to it before comparison. Every cell
	// in Cells() sets it explicitly (LevelValid is the zero value, so
	// leaving it unset would silently weaken a cell to validity-only).
	// The linear-scan cell runs at LevelValid: its interval hulls are
	// sensitive to block order by design, so relabeling may legally
	// change its spill choices — the full oracle still applies.
	MaxLevel Level
}

// Cells returns the allocator axis: every baseline, the
// preference-directed allocator with each design-choice knock-out
// (shared registry with the ablation harness), the coalesce-only
// mode, and the full allocator under its optional spill strategies.
func Cells() []Cell {
	cells := []Cell{
		{Name: "chaitin", Alloc: chaitin.New(), MaxLevel: LevelExact},
		{Name: "briggs-aggressive", Alloc: briggs.New(), MaxLevel: LevelExact},
		{Name: "briggs-conservative", Alloc: briggs.NewConservative(), MaxLevel: LevelExact},
		{Name: "iterated", Alloc: iterated.New(), MaxLevel: LevelExact},
		{Name: "optimistic", Alloc: optimistic.New(), MaxLevel: LevelExact},
		{Name: "priority", Alloc: priority.New(), MaxLevel: LevelExact},
		{Name: "callcost", Alloc: callcost.New(), MaxLevel: LevelExact},
		{Name: "pref-coalesce", Alloc: core.NewCoalesceOnly(), MaxLevel: LevelExact},
		{Name: "linearscan", Alloc: linearscan.New(), MaxLevel: LevelValid},
	}
	for _, v := range core.Variants() {
		cells = append(cells, Cell{
			Name: "pref-" + v.Label, Alloc: core.NewAblated(v.Ablation), MaxLevel: LevelExact,
		})
	}
	full := func() regalloc.Allocator { return core.New() }
	cells = append(cells,
		Cell{Name: "pref-full+remat", Alloc: full(),
			Opts: regalloc.Options{Rematerialize: true}, MaxLevel: LevelExact},
		Cell{Name: "pref-full+blocklocal", Alloc: full(),
			Opts: regalloc.Options{BlockLocalSpills: true}, MaxLevel: LevelExact},
	)
	return cells
}

// Outcome is everything the harness compares about one allocation
// run: success, the outcome statistics, the perf-model estimate, and
// a digest of the rewritten code.
type Outcome struct {
	Err error

	MovesBefore    int
	MovesRemaining int
	SpillLoads     int
	SpillStores    int
	SpilledWebs    int
	Remats         int
	Rounds         int

	CallerSaveStores int
	CallerSaveLoads  int

	Cycles          float64
	FusedPairs      int
	MissedPairs     int
	LimitsHonored   int
	LimitViolations int

	Digest string
}

// runCell allocates f on m under one cell, with the full RunChecked
// oracle, converting panics into errors so one bad cell cannot take
// down a randomized round (a panicking allocator is a finding, not a
// crash).
func runCell(f *ir.Func, m *target.Machine, c Cell) (o Outcome) {
	defer func() {
		if r := recover(); r != nil {
			o = Outcome{Err: fmt.Errorf("panic: %v", r)}
		}
	}()
	out, stats, err := regalloc.RunChecked(f, m, c.Alloc, c.Opts)
	if err != nil {
		return Outcome{Err: err}
	}
	est := perfmodel.Estimate(out, m)
	return Outcome{
		MovesBefore:      stats.MovesBefore,
		MovesRemaining:   stats.MovesRemaining,
		SpillLoads:       stats.SpillLoads,
		SpillStores:      stats.SpillStores,
		SpilledWebs:      stats.SpilledWebs,
		Remats:           stats.Remats,
		Rounds:           stats.Rounds,
		CallerSaveStores: stats.CallerSaveStores,
		CallerSaveLoads:  stats.CallerSaveLoads,
		Cycles:           est.Cycles,
		FusedPairs:       est.FusedPairs,
		MissedPairs:      est.MissedPairs,
		LimitsHonored:    est.LimitsHonored,
		LimitViolations:  est.LimitViolations,
		Digest:           bench.FuncDigest("f", stats, out),
	}
}

// cyclesClose compares cycle estimates with a small relative
// tolerance: block relabeling reorders the float summation.
func cyclesClose(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}

// compare grades a transformed run against the base run at the given
// level and returns "" when the invariant holds, else a reason whose
// first token is a stable category (the shrinker matches on it).
func compare(level Level, base, tr Outcome) string {
	if tr.Err != nil {
		return fmt.Sprintf("run-error: transformed program failed: %v", tr.Err)
	}
	if base.MovesBefore != tr.MovesBefore {
		return fmt.Sprintf("moves-before: %d vs %d (transform changed input shape)",
			base.MovesBefore, tr.MovesBefore)
	}
	if level >= LevelOutcome {
		type stat struct {
			name string
			a, b int
		}
		for _, s := range []stat{
			{"spilled-webs", base.SpilledWebs, tr.SpilledWebs},
			{"spill-loads", base.SpillLoads, tr.SpillLoads},
			{"spill-stores", base.SpillStores, tr.SpillStores},
			{"remats", base.Remats, tr.Remats},
			{"rounds", base.Rounds, tr.Rounds},
			{"moves-remaining", base.MovesRemaining, tr.MovesRemaining},
			{"caller-save-stores", base.CallerSaveStores, tr.CallerSaveStores},
			{"caller-save-loads", base.CallerSaveLoads, tr.CallerSaveLoads},
			{"fused-pairs", base.FusedPairs, tr.FusedPairs},
			{"missed-pairs", base.MissedPairs, tr.MissedPairs},
			{"limits-honored", base.LimitsHonored, tr.LimitsHonored},
			{"limit-violations", base.LimitViolations, tr.LimitViolations},
		} {
			if s.a != s.b {
				return fmt.Sprintf("%s: %d vs %d", s.name, s.a, s.b)
			}
		}
		if !cyclesClose(base.Cycles, tr.Cycles) {
			return fmt.Sprintf("cycles: %g vs %g", base.Cycles, tr.Cycles)
		}
	}
	if level >= LevelExact && base.Digest != tr.Digest {
		return fmt.Sprintf("digest: %s vs %s", base.Digest[:12], tr.Digest[:12])
	}
	return ""
}

// Failure is one violated invariant: the named transform broke the
// named cell on the named machine for input F (the untransformed
// program — replaying the cell on F reproduces the failure, since the
// transform is re-derived from Seed).
type Failure struct {
	Machine   string
	Cell      string
	Transform string // "identity" when the base run itself failed
	Seed      int64
	Reason    string
	F         *ir.Func
}

func (fl Failure) String() string {
	return fmt.Sprintf("%s/%s/%s seed=%d: %s", fl.Machine, fl.Cell, fl.Transform, fl.Seed, fl.Reason)
}

// transformSeed derives the per-transform RNG seed so a (seed,
// transform) pair is reproducible independent of matrix order.
func transformSeed(seed int64, idx int) int64 {
	return seed*1000003 + int64(idx)
}

// newRng builds the deterministic RNG for one derived seed.
func newRng(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// CheckFunc runs the whole transform × cell matrix for one input
// function on one machine and returns every violated invariant.
// Transformed programs are derived once and shared across cells.
func CheckFunc(f *ir.Func, m *target.Machine, seed int64) []Failure {
	type variant struct {
		Transform
		f *ir.Func
		m *target.Machine
	}
	variants := make([]variant, 0, len(Transforms()))
	for i, tr := range Transforms() {
		rng := rand.New(rand.NewSource(transformSeed(seed, i)))
		f2, m2 := tr.Apply(f, m, rng)
		variants = append(variants, variant{Transform: tr, f: f2, m: m2})
	}

	var fails []Failure
	for _, c := range Cells() {
		base := runCell(f, m, c)
		if base.Err != nil {
			fails = append(fails, Failure{
				Machine: m.Name, Cell: c.Name, Transform: "identity", Seed: seed,
				Reason: fmt.Sprintf("run-error: %v", base.Err), F: f,
			})
			continue
		}
		for _, v := range variants {
			tr := runCell(v.f, v.m, c)
			if reason := compare(min(v.Level, c.MaxLevel), base, tr); reason != "" {
				fails = append(fails, Failure{
					Machine: m.Name, Cell: c.Name, Transform: v.Name, Seed: seed,
					Reason: reason, F: f,
				})
			}
		}
	}
	return fails
}

// Round generates one random program per machine from the shared fuzz
// profile and runs the full matrix on each.
func Round(seed int64) []Failure {
	var fails []Failure
	for _, m := range Machines() {
		f := workload.GenerateRawFunc(workload.Fuzz(), m, seed)
		fails = append(fails, CheckFunc(f, m, seed)...)
	}
	return fails
}

// ReproducePredicate builds the shrinker predicate for one failure: a
// candidate input keeps the failure alive when replaying its exact
// matrix cell (same machine, cell, transform, seed) still violates
// the invariant with the same reason category. Candidates that no
// longer pass input validation are rejected.
func ReproducePredicate(fl Failure) Predicate {
	var m *target.Machine
	for _, mm := range Machines() {
		if mm.Name == fl.Machine {
			m = mm
		}
	}
	var cell Cell
	for _, c := range Cells() {
		if c.Name == fl.Cell {
			cell = c
		}
	}
	if m == nil || cell.Alloc == nil {
		return func(*ir.Func) bool { return false }
	}
	category := reasonCategory(fl.Reason)
	return func(cand *ir.Func) bool {
		if regalloc.ValidateInput(cand, m) != nil {
			return false
		}
		for _, got := range replayCell(cand, m, cell, fl.Transform, fl.Seed) {
			if reasonCategory(got) == category {
				return true
			}
		}
		return false
	}
}

// replayCell re-runs a single matrix cell and returns the violation
// reasons (empty when the invariant holds).
func replayCell(f *ir.Func, m *target.Machine, cell Cell, transform string, seed int64) []string {
	base := runCell(f, m, cell)
	if transform == "identity" {
		if base.Err != nil {
			return []string{fmt.Sprintf("run-error: %v", base.Err)}
		}
		return nil
	}
	if base.Err != nil {
		return nil
	}
	for i, tr := range Transforms() {
		if tr.Name != transform {
			continue
		}
		rng := rand.New(rand.NewSource(transformSeed(seed, i)))
		f2, m2 := tr.Apply(f, m, rng)
		if reason := compare(min(tr.Level, cell.MaxLevel), base, runCell(f2, m2, cell)); reason != "" {
			return []string{reason}
		}
	}
	return nil
}

// reasonCategory extracts the stable comparison key of a failure
// reason. Stat divergences key on the leading token ("spill-loads: 3
// vs 4" → "spill-loads"): a shrink step may change the magnitude but
// not the kind of divergence. Run errors instead key on the whole
// message with digits removed — "spill temporary v57 was spilled
// again" and "oracle: b7[0] reloads spill slot 0 before any store"
// are different bugs, and a shrinker allowed to drift between them
// would minimize toward whichever is easiest to trigger rather than
// the one being chased. Stripping digits keeps the key stable as
// shrinking renames registers, blocks, slots, and round counts.
func reasonCategory(reason string) string {
	head := reason
	for i := 0; i < len(head); i++ {
		if head[i] == ':' {
			head = head[:i]
			break
		}
	}
	if head != "run-error" {
		return head
	}
	key := make([]byte, 0, len(reason))
	for i := 0; i < len(reason); i++ {
		if reason[i] < '0' || reason[i] > '9' {
			key = append(key, reason[i])
		}
	}
	return string(key)
}
