package metamorph

import (
	"bytes"
	"math/rand"
	"testing"

	"prefcolor/internal/ir"
)

// The binary wire format must be the identity over everything the
// metamorphic harness can produce: every pinned corpus reproducer and
// every transform of it round-trips through EncodeBinary/DecodeBinary
// unchanged, with canonical (re-encodable, byte-identical) output.
func TestBinaryRoundTripTransformCorpus(t *testing.T) {
	cases, err := LoadCorpus("testdata/corpus")
	if err != nil {
		t.Fatalf("LoadCorpus: %v", err)
	}
	if len(cases) == 0 {
		t.Fatal("empty corpus")
	}
	machines := Machines()
	check := func(name string, f *ir.Func) {
		t.Helper()
		enc := ir.EncodeBinary(f)
		g, err := ir.DecodeBinary(enc)
		if err != nil {
			t.Fatalf("%s: DecodeBinary: %v", name, err)
		}
		if g.String() != f.String() {
			t.Fatalf("%s: round trip changed text:\n got: %s\nwant: %s", name, g.String(), f.String())
		}
		if !bytes.Equal(ir.EncodeBinary(g), enc) {
			t.Fatalf("%s: encoding not canonical", name)
		}
	}
	for _, c := range cases {
		check(c.File, c.F)
		m := machines[0]
		for _, mm := range machines {
			if mm.Name == c.Machine {
				m = mm
			}
		}
		for _, tr := range Transforms() {
			for seed := int64(1); seed <= 3; seed++ {
				tf, _ := tr.Apply(c.F, m, rand.New(rand.NewSource(seed)))
				check(c.File+"/"+tr.Name, tf)
			}
		}
	}
}
