package metamorph

import (
	"os"
	"testing"

	"prefcolor/internal/ir"
	"prefcolor/internal/target"
	"prefcolor/internal/workload"
)

// TestGenerateSeedCorpus is a one-off generator (run manually with
// METAMORPH_GEN_CORPUS=1) that produced the committed corpus seeds.
func TestGenerateSeedCorpus(t *testing.T) {
	if os.Getenv("METAMORPH_GEN_CORPUS") == "" {
		t.Skip("set METAMORPH_GEN_CORPUS=1 to regenerate")
	}
	dir := "testdata/corpus"

	// Case A: the seed-59 sweep finding — a register-file remap flips
	// chaitin's accidental pair fusion (equal-cost tie-break). Shrink
	// to the minimal program where the outcome-level comparison still
	// diverges; the corpus replays it at the honest LevelValid.
	m := target.UsageModel(8)
	f := workload.GenerateRawFunc(workload.Fuzz(), m, 59)
	var cell Cell
	for _, c := range Cells() {
		if c.Name == "chaitin" {
			cell = c
		}
	}
	var remap Transform
	remapIdx := 0
	for i, tr := range Transforms() {
		if tr.Name == "remap-regfile" {
			remap, remapIdx = tr, i
		}
	}
	keep := func(cand *ir.Func) bool {
		base := runCell(cand, m, cell)
		if base.Err != nil {
			return false
		}
		f2, m2 := remap.Apply(cand, m, newRng(transformSeed(59, remapIdx)))
		return compare(LevelOutcome, base, runCell(f2, m2, cell)) != ""
	}
	if !keep(f) {
		t.Fatal("seed-59 outcome divergence no longer reproduces")
	}
	small := ShrinkBudget(f, keep, 2000)
	t.Logf("case A shrunk %d -> %d instrs", f.NumInstrs(), small.NumInstrs())
	path, err := WriteCase(dir, Failure{
		Machine: m.Name, Cell: cell.Name, Transform: remap.Name, Seed: 59,
		Reason: "fused-pairs: 2 vs 1 (historical outcome-level finding; tie-break, asserted valid)",
	}, small)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s:\n%s", path, small)
}
