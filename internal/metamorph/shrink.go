package metamorph

import (
	"prefcolor/internal/ir"
)

// Predicate reports whether a candidate program still exhibits the
// failure being minimized. Candidates handed to it always pass
// ir.Validate; the predicate adds whatever failure-specific replay it
// needs.
type Predicate func(*ir.Func) bool

// defaultShrinkBudget bounds predicate evaluations per Shrink call.
// Each evaluation replays a full allocation cell, so an unbounded
// ddmin over a stubborn failure could otherwise dominate a test run;
// the budget trades minimality for a hard time bound.
const defaultShrinkBudget = 500

// Shrink minimizes f while keep stays true, by delta debugging:
// repeated passes of branch-to-jump simplification (with unreachable-
// block pruning), ddmin instruction-chunk deletion, and parameter
// dropping, to a fixed point, followed by virtual-register
// compaction. The result is the smallest program the passes can reach
// within the evaluation budget that still satisfies keep; f itself
// must satisfy keep (otherwise f is returned unchanged).
func Shrink(f *ir.Func, keep Predicate) *ir.Func {
	return ShrinkBudget(f, keep, defaultShrinkBudget)
}

// ShrinkBudget is Shrink with an explicit cap on predicate
// evaluations.
func ShrinkBudget(f *ir.Func, keep Predicate, budget int) *ir.Func {
	evals := 0
	bounded := func(cand *ir.Func) bool {
		if evals >= budget {
			return false
		}
		evals++
		return keep(cand)
	}
	cur := f.Clone()
	if !keep(cur) {
		return cur
	}
	for changed := true; changed && evals < budget; {
		changed = false
		if next, ok := shrinkBranches(cur, bounded); ok {
			cur, changed = next, true
		}
		if next, ok := shrinkInstrs(cur, bounded); ok {
			cur, changed = next, true
		}
		if next, ok := shrinkParams(cur, bounded); ok {
			cur, changed = next, true
		}
	}
	// Compaction is cheap and purely cosmetic, so it gets a free
	// evaluation outside the budget.
	if compact := compactVirt(cur); keep(compact) {
		cur = compact
	}
	return cur
}

// tryCandidate accepts cand when it is structurally valid and still
// fails.
func tryCandidate(cand *ir.Func, keep Predicate) bool {
	return ir.Validate(cand) == nil && keep(cand)
}

// shrinkBranches rewrites two-way branches into unconditional jumps
// (keeping either successor) and prunes the blocks that become
// unreachable. Functions with φs are left to the instruction pass:
// pruning predecessors would desynchronize φ-argument lists.
func shrinkBranches(f *ir.Func, keep Predicate) (*ir.Func, bool) {
	if f.CountOp(ir.Phi) > 0 {
		return f, false
	}
	cur, any := f, false
	for {
		improved := false
		for bi := 0; bi < len(cur.Blocks) && !improved; bi++ {
			term := cur.Blocks[bi].Terminator()
			if term == nil || term.Op != ir.Branch {
				continue
			}
			for _, side := range []int{0, 1} {
				cand := cur.Clone()
				b := cand.Blocks[bi]
				t := b.Terminator()
				t.Op = ir.Jump
				t.Uses = nil
				b.Succs = []ir.BlockID{b.Succs[side]}
				cand.RecomputePreds()
				cand = pruneUnreachable(cand)
				if tryCandidate(cand, keep) {
					cur, any, improved = cand, true, true
					break
				}
			}
		}
		if !improved {
			return cur, any
		}
	}
}

// pruneUnreachable removes blocks not reachable from the entry and
// renumbers the survivors (ID == slice index). Call only on φ-free
// functions.
func pruneUnreachable(f *ir.Func) *ir.Func {
	reach := make([]bool, len(f.Blocks))
	stack := []ir.BlockID{0}
	reach[0] = true
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range f.Blocks[id].Succs {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	newID := make([]ir.BlockID, len(f.Blocks))
	var kept []*ir.Block
	for i, b := range f.Blocks {
		if reach[i] {
			newID[i] = ir.BlockID(len(kept))
			b.ID = newID[i]
			kept = append(kept, b)
		}
	}
	f.Blocks = kept
	for _, b := range f.Blocks {
		for i, s := range b.Succs {
			b.Succs[i] = newID[s]
		}
	}
	f.RecomputePreds()
	return f
}

// shrinkInstrs runs ddmin over each block's non-terminator
// instructions: try deleting chunks, halving the chunk size until
// single instructions, keeping every deletion under which the failure
// survives.
func shrinkInstrs(f *ir.Func, keep Predicate) (*ir.Func, bool) {
	cur, any := f, false
	for bi := 0; bi < len(cur.Blocks); bi++ {
		body := len(cur.Blocks[bi].Instrs)
		if t := cur.Blocks[bi].Terminator(); t != nil {
			body--
		}
		for size := body; size >= 1; size /= 2 {
			for start := 0; start+size <= bodyLen(cur.Blocks[bi]); {
				cand := cur.Clone()
				b := cand.Blocks[bi]
				b.Instrs = append(b.Instrs[:start:start], b.Instrs[start+size:]...)
				if tryCandidate(cand, keep) {
					cur, any = cand, true
					// Same start now addresses the next chunk.
				} else {
					start += size
				}
			}
		}
	}
	return cur, any
}

func bodyLen(b *ir.Block) int {
	n := len(b.Instrs)
	if t := b.Terminator(); t != nil {
		n--
	}
	return n
}

// shrinkParams drops trailing parameters while the failure survives.
func shrinkParams(f *ir.Func, keep Predicate) (*ir.Func, bool) {
	cur, any := f, false
	for len(cur.Params) > 0 {
		cand := cur.Clone()
		cand.Params = cand.Params[:len(cand.Params)-1]
		if !tryCandidate(cand, keep) {
			break
		}
		cur, any = cand, true
	}
	return cur, any
}

// compactVirt renumbers the surviving virtual registers densely in
// first-occurrence order and shrinks NumVirt accordingly, so the
// reproducer reads v0, v1, … with no gaps.
func compactVirt(f *ir.Func) *ir.Func {
	out := f.Clone()
	remap := map[ir.Reg]ir.Reg{}
	next := 0
	mapReg := func(r ir.Reg) ir.Reg {
		if !r.IsVirt() {
			return r
		}
		nr, ok := remap[r]
		if !ok {
			nr = ir.Virt(next)
			next++
			remap[r] = nr
		}
		return nr
	}
	for i, p := range out.Params {
		out.Params[i] = mapReg(p)
	}
	out.ForEachInstr(func(_ *ir.Block, _ int, in *ir.Instr) {
		for di, d := range in.Defs {
			in.Defs[di] = mapReg(d)
		}
		for ui, u := range in.Uses {
			in.Uses[ui] = mapReg(u)
		}
	})
	out.NumVirt = next
	return out
}
