package metamorph

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"prefcolor/internal/cfg"
	"prefcolor/internal/ig"
	"prefcolor/internal/ir"
	"prefcolor/internal/workload"
)

// extraRounds adds randomized rounds beyond the mode default, for the
// budgeted CI metamorph job:
//
//	go test ./internal/metamorph -run TestMatrix -metamorph.rounds=64
var extraRounds = flag.Int("metamorph.rounds", 0,
	"extra randomized metamorphic rounds beyond the mode default")

// TestMatrix is the metamorphic + differential matrix: random
// programs, every transform × allocator × machine cell, invariance
// asserted at each transform's level. Failures are shrunk to minimal
// reproducers; when METAMORPH_ARTIFACT_DIR is set (the CI job sets
// it) each reproducer is also written there for artifact upload.
func TestMatrix(t *testing.T) {
	rounds := 4
	if testing.Short() {
		rounds = 1
	}
	rounds += *extraRounds
	for seed := int64(1); seed <= int64(rounds); seed++ {
		for _, fl := range Round(seed) {
			reportFailure(t, fl)
		}
	}
}

// reportFailure shrinks a failure and logs (plus optionally archives)
// the reproducer alongside the violation.
func reportFailure(t *testing.T, fl Failure) {
	t.Helper()
	shrunk := Shrink(fl.F, ReproducePredicate(fl))
	src := EncodeCase(CorpusCase{
		Machine: fl.Machine, Cell: fl.Cell, Transform: fl.Transform,
		Seed: fl.Seed, Reason: fl.Reason, F: shrunk,
	})
	if dir := os.Getenv("METAMORPH_ARTIFACT_DIR"); dir != "" {
		if path, err := WriteCase(dir, fl, shrunk); err == nil {
			t.Logf("reproducer written to %s", path)
		} else {
			t.Logf("writing reproducer failed: %v", err)
		}
	}
	t.Errorf("%s\nreproducer:\n%s", fl, src)
}

// TestCorpusReplay replays every versioned reproducer's exact failure
// cell — these are fixed bugs and must stay fixed — and then runs the
// full matrix over the reproducer program for breadth.
func TestCorpusReplay(t *testing.T) {
	cases, err := LoadCorpus(filepath.Join("testdata", "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		c := c
		t.Run(c.File, func(t *testing.T) {
			reasons, err := ReplayCase(c)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range reasons {
				t.Errorf("regressed: %s/%s/%s seed=%d: %s", c.Machine, c.Cell, c.Transform, c.Seed, r)
			}
			for _, m := range Machines() {
				if m.Name != c.Machine {
					continue
				}
				for _, fl := range CheckFunc(c.F, m, c.Seed) {
					t.Errorf("matrix over corpus program: %s", fl)
				}
			}
		})
	}
}

// TestTransformsPreserveValidity checks the transforms' own contract:
// applied to generated programs they must produce structurally valid
// functions with the same instruction and copy counts (scale/commute/
// rename/remap) or the same multiset of blocks (relabel).
func TestTransformsPreserveValidity(t *testing.T) {
	for _, m := range Machines() {
		for seed := int64(1); seed <= 5; seed++ {
			f := workload.GenerateRawFunc(workload.Fuzz(), m, seed)
			for i, tr := range Transforms() {
				rng := newRng(transformSeed(seed, i))
				f2, m2 := tr.Apply(f, m, rng)
				if err := ir.Validate(f2); err != nil {
					t.Fatalf("%s on %s seed %d: invalid output: %v", tr.Name, m.Name, seed, err)
				}
				if err := m2.Validate(); err != nil {
					t.Fatalf("%s on %s seed %d: invalid machine: %v", tr.Name, m.Name, seed, err)
				}
				if f.NumInstrs() != f2.NumInstrs() {
					t.Fatalf("%s on %s seed %d: instruction count changed %d -> %d",
						tr.Name, m.Name, seed, f.NumInstrs(), f2.NumInstrs())
				}
				if got, want := f2.CountOp(ir.Move), f.CountOp(ir.Move); got != want {
					t.Fatalf("%s on %s seed %d: copy count changed %d -> %d",
						tr.Name, m.Name, seed, want, got)
				}
			}
		}
	}
}

// TestRelabelPreservesAnalyses asserts the analysis-level invariants
// behind relabel-blocks directly: permuting block labels must not
// change the natural-loop structure (dominator-based, so label-order
// independent), the frequency-weighted program size, or the number of
// webs renumbering finds. Allocation *outcomes* may legitimately
// shift under relabeling (web-order tie-breaks), which is why the
// matrix asserts relabel at LevelValid — this test keeps the
// underlying analyses honest instead.
func TestRelabelPreservesAnalyses(t *testing.T) {
	type summary struct {
		loops    int
		depths   string
		weighted float64
		webs     int
	}
	summarize := func(f *ir.Func) summary {
		d := cfg.NewDomTree(f)
		li := cfg.FindLoops(f, d)
		var depths []int
		for _, l := range li.Loops {
			depths = append(depths, l.Depth)
		}
		sort.Ints(depths)
		var weighted float64
		for _, b := range f.Blocks {
			weighted += li.Freq(b.ID) * float64(len(b.Instrs))
		}
		clone := f.Clone()
		ri, err := ig.Renumber(clone)
		if err != nil {
			t.Fatal(err)
		}
		return summary{
			loops:    len(li.Loops),
			depths:   fmt.Sprint(depths),
			weighted: weighted,
			webs:     ri.NumWebs,
		}
	}
	for _, m := range Machines() {
		for seed := int64(1); seed <= 8; seed++ {
			f := workload.GenerateRawFunc(workload.Fuzz(), m, seed)
			f2, _ := relabelBlocks(f, m, newRng(seed))
			a, b := summarize(f), summarize(f2)
			if a != b {
				t.Fatalf("%s seed %d: analyses differ under relabeling:\n%+v\n%+v\nfunc:\n%s",
					m.Name, seed, a, b, f)
			}
		}
	}
}

// TestTransformsAreDeterministic pins that a (transform, seed) pair
// always derives the same variant — the property that lets Failure
// record only the untransformed program.
func TestTransformsAreDeterministic(t *testing.T) {
	for _, m := range Machines() {
		f := workload.GenerateRawFunc(workload.Fuzz(), m, 7)
		for i, tr := range Transforms() {
			a, ma := tr.Apply(f, m, newRng(transformSeed(7, i)))
			b, mb := tr.Apply(f, m, newRng(transformSeed(7, i)))
			if a.String() != b.String() {
				t.Fatalf("%s on %s: nondeterministic program", tr.Name, m.Name)
			}
			if fmt.Sprintf("%+v", ma) != fmt.Sprintf("%+v", mb) {
				t.Fatalf("%s on %s: nondeterministic machine", tr.Name, m.Name)
			}
		}
	}
}

// TestCellsAndMachinesWellFormed guards the matrix axes themselves:
// unique names, valid machines.
func TestCellsAndMachinesWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Cells() {
		if c.Name == "" || c.Alloc == nil {
			t.Fatalf("malformed cell %+v", c)
		}
		if seen[c.Name] {
			t.Fatalf("duplicate cell name %q", c.Name)
		}
		seen[c.Name] = true
	}
	mseen := map[string]bool{}
	for _, m := range Machines() {
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		if mseen[m.Name] {
			t.Fatalf("duplicate machine name %q", m.Name)
		}
		mseen[m.Name] = true
	}
}
