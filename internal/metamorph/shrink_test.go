package metamorph

import (
	"strings"
	"testing"

	"prefcolor/internal/ir"
	"prefcolor/internal/target"
	"prefcolor/internal/workload"
)

// TestShrinkMinimizesToPredicateCore shrinks a large generated
// program against a synthetic predicate ("still contains a call and a
// mul") and expects a drastically smaller, still-valid, still-failing
// program.
func TestShrinkMinimizesToPredicateCore(t *testing.T) {
	m := target.UsageModel(8)
	p := workload.Fuzz()
	p.Stmts = 40
	f := workload.GenerateRawFunc(p, m, 3)
	keep := func(cand *ir.Func) bool {
		return cand.CountOp(ir.Call) >= 1 && cand.CountOp(ir.Mul) >= 1
	}
	if !keep(f) {
		t.Skip("seed produced no call+mul; adjust seed")
	}
	small := Shrink(f, keep)
	if err := ir.Validate(small); err != nil {
		t.Fatalf("shrunk program invalid: %v", err)
	}
	if !keep(small) {
		t.Fatal("shrunk program no longer satisfies predicate")
	}
	if small.NumInstrs() >= f.NumInstrs()/2 {
		t.Fatalf("shrink barely reduced: %d -> %d instrs", f.NumInstrs(), small.NumInstrs())
	}
	// 1-minimality over the passes' own moves: deleting any single
	// remaining non-terminator instruction must break the predicate or
	// validity.
	for bi, b := range small.Blocks {
		for i := 0; i < bodyLen(b); i++ {
			cand := small.Clone()
			cb := cand.Blocks[bi]
			cb.Instrs = append(cb.Instrs[:i:i], cb.Instrs[i+1:]...)
			if ir.Validate(cand) == nil && keep(cand) {
				t.Fatalf("not 1-minimal: block %d instr %d removable", bi, i)
			}
		}
	}
}

// TestShrinkBranchCollapse checks that branch shrinking rewrites a
// diamond into a straight line (plus pruning) when the predicate only
// cares about one arm.
func TestShrinkBranchCollapse(t *testing.T) {
	f := ir.MustParse(`
func f(v0) {
b0:
  v1 = loadimm 1
  branch v0, b1, b2
b1:
  v2 = mul v1, v1
  jump b3
b2:
  v3 = add v1, v1
  jump b3
b3:
  ret v2
}
`)
	keep := func(cand *ir.Func) bool { return cand.CountOp(ir.Mul) >= 1 }
	small := Shrink(f, keep)
	if small.CountOp(ir.Branch) != 0 {
		t.Fatalf("branch survived shrinking:\n%s", small)
	}
	if n := len(small.Blocks); n > 3 {
		t.Fatalf("unreachable arm not pruned (%d blocks):\n%s", n, small)
	}
	if small.CountOp(ir.Mul) != 1 {
		t.Fatalf("predicate core lost:\n%s", small)
	}
}

// TestShrinkKeepsOriginalWhenPredicateFailsUpfront pins the contract
// that a non-failing input is returned unchanged.
func TestShrinkKeepsOriginalWhenPredicateFailsUpfront(t *testing.T) {
	f := ir.MustParse("func f() {\nb0:\n  ret\n}\n")
	got := Shrink(f, func(*ir.Func) bool { return false })
	if got.String() != f.String() {
		t.Fatalf("non-failing input modified:\n%s", got)
	}
}

// TestCompactVirt checks dense renumbering in first-occurrence order.
func TestCompactVirt(t *testing.T) {
	f := ir.MustParse(`
func f(v7) {
b0:
  v9 = add v7, v7
  ret v9
}
`)
	got := compactVirt(f)
	if got.NumVirt != 2 {
		t.Fatalf("NumVirt = %d, want 2", got.NumVirt)
	}
	want := strings.TrimSpace(`
func f(v0) {
b0:
  v1 = add v0, v0
  ret v1
}
`)
	if strings.TrimSpace(got.String()) != want {
		t.Fatalf("compacted:\n%s\nwant:\n%s", got, want)
	}
	if err := ir.Validate(got); err != nil {
		t.Fatal(err)
	}
}
