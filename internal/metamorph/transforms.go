// Package metamorph is the metamorphic + differential correctness
// harness for the allocation pipeline. It applies semantics-preserving
// transforms to input programs (and, where relevant, to the machine
// description) and asserts that allocation outcomes are invariant
// across every transform × allocator × machine cell; any violation is
// minimized by a delta-debugging shrinker into a small reproducer that
// the versioned testdata/corpus directory replays forever.
//
// The invariants come in three strengths, because the transforms
// guarantee different amounts of identity:
//
//   - LevelExact: the pipeline canonicalizes the varied dimension away
//     (renumber rebuilds webs from program structure, not register
//     names), so the rewritten output must be byte-identical.
//   - LevelOutcome: the cost-model view of the program is unchanged,
//     so spill counts, surviving moves, pair/limit accounting, and
//     estimated cycles must match, though concrete register choices
//     may differ.
//   - LevelValid: the transform preserves the machine's cost classes
//     only up to greedy tie-breaking, so the assertion is the full
//     RunChecked oracle on the transformed program plus agreement on
//     the input-shape statistics.
package metamorph

import (
	"math/rand"
	"sort"

	"prefcolor/internal/ir"
	"prefcolor/internal/target"
)

// Level grades how much of the allocation outcome a transform must
// preserve. Higher levels include every lower level's checks.
type Level int

const (
	// LevelValid requires the transformed program to allocate
	// successfully under the full RunChecked oracle, with the input
	// shape (copy count) unchanged.
	LevelValid Level = iota

	// LevelOutcome additionally requires identical outcome statistics:
	// spill loads/stores/webs, rounds, surviving and eliminated moves,
	// caller-save traffic, pair fusion, limit accounting, and
	// estimated cycles (compared with a small relative tolerance,
	// since block reordering reorders float accumulation).
	LevelOutcome

	// LevelExact additionally requires the final rewritten function to
	// be byte-identical (same digest).
	LevelExact
)

func (l Level) String() string {
	switch l {
	case LevelExact:
		return "exact"
	case LevelOutcome:
		return "outcome"
	default:
		return "valid"
	}
}

// Transform is one semantics-preserving program/machine rewrite.
// Apply must not modify its inputs; it returns the transformed
// function and machine (the machine is shared, unmodified, unless the
// transform varies it). Transforms must keep ValidateInput satisfied:
// garbage in would test the validator, not the allocators.
type Transform struct {
	Name  string
	Level Level
	Apply func(f *ir.Func, m *target.Machine, rng *rand.Rand) (*ir.Func, *target.Machine)
}

// Transforms returns the transform catalogue in report order.
func Transforms() []Transform {
	return []Transform{
		{Name: "rename-virt", Level: LevelExact, Apply: renameVirt},
		{Name: "relabel-blocks", Level: LevelValid, Apply: relabelBlocks},
		{Name: "commute-ops", Level: LevelOutcome, Apply: commuteOps},
		{Name: "scale-offsets", Level: LevelOutcome, Apply: scaleOffsets},
		{Name: "remap-regfile", Level: LevelValid, Apply: remapRegFile},
	}
}

// renameVirt applies a random permutation to the virtual register
// numbers. Renumber rebuilds webs from definition sites in program
// order, never from register names, so the whole pipeline must be
// bit-for-bit blind to this (LevelExact).
func renameVirt(f *ir.Func, m *target.Machine, rng *rand.Rand) (*ir.Func, *target.Machine) {
	out := f.Clone()
	if out.NumVirt < 2 {
		return out, m
	}
	perm := rng.Perm(out.NumVirt)
	mapReg := func(r ir.Reg) ir.Reg {
		if r.IsVirt() {
			return ir.Virt(perm[r.VirtNum()])
		}
		return r
	}
	for i, p := range out.Params {
		out.Params[i] = mapReg(p)
	}
	out.ForEachInstr(func(_ *ir.Block, _ int, in *ir.Instr) {
		for di, d := range in.Defs {
			in.Defs[di] = mapReg(d)
		}
		for ui, u := range in.Uses {
			in.Uses[ui] = mapReg(u)
		}
	})
	return out, m
}

// relabelBlocks permutes the non-entry basic blocks (IDs and slice
// positions move together — ir.Validate requires ID == index) and
// remaps all successor edges. Control flow, dominators, natural
// loops, and hence every frequency are unchanged (asserted directly
// by TestRelabelPreservesAnalyses), but renumbering assigns web
// numbers in block order, and the allocators break cost ties on web
// order — so concrete spill choices may legitimately differ
// (measured: up to ~12% spill-load swing on the fuzz profile). The
// assertion level is therefore LevelValid: the full oracle plus
// input-shape agreement. Functions containing φs are returned
// unchanged: φ-argument order is pred-order-dependent and allocation
// input is φ-free anyway.
func relabelBlocks(f *ir.Func, m *target.Machine, rng *rand.Rand) (*ir.Func, *target.Machine) {
	out := f.Clone()
	if len(out.Blocks) < 3 || out.CountOp(ir.Phi) > 0 {
		return out, m
	}
	n := len(out.Blocks)
	newID := make([]ir.BlockID, n)
	for i, p := range rng.Perm(n - 1) {
		newID[i+1] = ir.BlockID(p + 1)
	}
	blocks := make([]*ir.Block, n)
	for old, b := range out.Blocks {
		id := newID[old]
		b.ID = id
		blocks[id] = b
	}
	out.Blocks = blocks
	for _, b := range out.Blocks {
		for i, s := range b.Succs {
			b.Succs[i] = newID[s]
		}
	}
	out.RecomputePreds()
	return out, m
}

// commuteOps swaps the operands of commutative two-operand arithmetic
// (add, mul, and, or, xor) with probability ½ each. Interference,
// liveness, and every cost are operand-order-blind, so outcome
// statistics must be invariant (LevelOutcome).
func commuteOps(f *ir.Func, m *target.Machine, rng *rand.Rand) (*ir.Func, *target.Machine) {
	out := f.Clone()
	out.ForEachInstr(func(_ *ir.Block, _ int, in *ir.Instr) {
		switch in.Op {
		case ir.Add, ir.Mul, ir.And, ir.Or, ir.Xor:
			if len(in.Uses) == 2 && rng.Intn(2) == 0 {
				in.Uses[0], in.Uses[1] = in.Uses[1], in.Uses[0]
			}
		}
	})
	return out, m
}

// scaleOffsets multiplies every load/store offset and the machine's
// WordSize by one uniform factor. Paired-load adjacency is measured
// in words, so the pair structure — and with it every preference and
// cost — is unchanged (LevelOutcome). Arithmetic immediates (loadimm,
// addimm) are left alone: they are values, not addresses, and scaling
// them would change behavior and MinImmBits limit activation.
func scaleOffsets(f *ir.Func, m *target.Machine, rng *rand.Rand) (*ir.Func, *target.Machine) {
	out := f.Clone()
	scale := int64([]int{2, 3, 5}[rng.Intn(3)])
	const maxOff = int64(1) << 32
	ok := true
	out.ForEachInstr(func(_ *ir.Block, _ int, in *ir.Instr) {
		if (in.Op == ir.Load || in.Op == ir.Store) && (in.Imm > maxOff || in.Imm < -maxOff) {
			ok = false
		}
	})
	if !ok || m.WordSize > maxOff {
		return out, m
	}
	out.ForEachInstr(func(_ *ir.Block, _ int, in *ir.Instr) {
		if in.Op == ir.Load || in.Op == ir.Store {
			in.Imm *= scale
		}
	})
	m2 := *m
	m2.WordSize *= scale
	return out, &m2
}

// remapRegFile permutes the physical register file by a permutation
// that preserves every cost-relevant register class — volatility
// always, parity when the machine pairs by parity — and rewrites the
// machine description (volatile flags, parameter/return registers,
// limit subsets) and the function's physical operands through it. The
// transformed configuration is the image of the original under a cost
// isomorphism — every *cost* is preserved — but the allocators break
// ties among equal-cost registers by number, and the permutation
// reorders numbers within a class, so equal-cost decisions (which
// copies coalesce, whether a pair-blind baseline happens to fuse a
// load pair) legitimately shift: a 100-seed sweep held at outcome
// level for 58 seeds and then diverged on moves-remaining and
// fused-pairs across baselines and ablations alike. The assertion
// level is therefore LevelValid. Sequential-paired machines are
// returned unchanged: only the identity preserves r2 == r1+1.
func remapRegFile(f *ir.Func, m *target.Machine, rng *rand.Rand) (*ir.Func, *target.Machine) {
	out := f.Clone()
	if m.PairRule == target.PairSequential || m.NumRegs < 2 {
		return out, m
	}
	// Group registers into interchangeable classes and shuffle within
	// each class. The class key must capture every register property
	// the cost model can see: volatility, pair parity, and membership
	// in each limited-usage set (two registers inside and outside a
	// limit's Regs are not cost-equivalent even though the limit sets
	// themselves are remapped — allocators break ties on register
	// number, and a tie-break that lands inside a limit set is cheaper
	// than one outside it).
	classOf := func(r int) int {
		c := 0
		if m.IsVolatile(r) {
			c = 1
		}
		if m.PairRule == target.PairParity {
			c = c*2 + r%2
		}
		for _, l := range m.Limits {
			in := 0
			for _, lr := range l.Regs {
				if lr == r {
					in = 1
				}
			}
			c = c*2 + in
		}
		return c
	}
	classes := map[int][]int{}
	for r := 0; r < m.NumRegs; r++ {
		c := classOf(r)
		classes[c] = append(classes[c], r)
	}
	pi := make([]int, m.NumRegs)
	keys := make([]int, 0, len(classes))
	for c := range classes {
		keys = append(keys, c)
	}
	sort.Ints(keys)
	for _, c := range keys {
		members := classes[c]
		shuffled := append([]int(nil), members...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		for i, r := range members {
			pi[r] = shuffled[i]
		}
	}

	m2 := *m
	m2.Name = m.Name + "~remap"
	m2.Volatile = make([]bool, m.NumRegs)
	for r := 0; r < m.NumRegs; r++ {
		m2.Volatile[pi[r]] = m.IsVolatile(r)
	}
	m2.ParamRegs = make([]int, len(m.ParamRegs))
	for i, p := range m.ParamRegs {
		m2.ParamRegs[i] = pi[p]
	}
	m2.RetReg = pi[m.RetReg]
	m2.Limits = make([]target.Limit, len(m.Limits))
	for i, l := range m.Limits {
		nl := l
		nl.Regs = make([]int, len(l.Regs))
		for j, r := range l.Regs {
			nl.Regs[j] = pi[r]
		}
		sort.Ints(nl.Regs)
		m2.Limits[i] = nl
	}

	mapReg := func(r ir.Reg) ir.Reg {
		if r.IsPhys() && r.PhysNum() < m.NumRegs {
			return ir.Phys(pi[r.PhysNum()])
		}
		return r
	}
	for i, p := range out.Params {
		out.Params[i] = mapReg(p)
	}
	out.ForEachInstr(func(_ *ir.Block, _ int, in *ir.Instr) {
		for di, d := range in.Defs {
			in.Defs[di] = mapReg(d)
		}
		for ui, u := range in.Uses {
			in.Uses[ui] = mapReg(u)
		}
	})
	return out, &m2
}
