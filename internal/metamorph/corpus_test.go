package metamorph

import (
	"path/filepath"
	"strings"
	"testing"

	"prefcolor/internal/ir"
)

// TestCorpusRoundTrip pins that encode → decode is lossless for the
// header fields and the program text.
func TestCorpusRoundTrip(t *testing.T) {
	f := ir.MustParse(`
func f(r0) {
b0:
  v0 = move r0
  v1 = addimm v0, 40000
  r0 = move v1
  ret r0
}
`)
	in := CorpusCase{
		Machine: "x86-8", Cell: "pref-full", Transform: "rename-virt",
		Seed: 42, Reason: "digest: aaa vs bbb", F: f,
	}
	src := EncodeCase(in)
	out, err := DecodeCase(src)
	if err != nil {
		t.Fatal(err)
	}
	if out.Machine != in.Machine || out.Cell != in.Cell ||
		out.Transform != in.Transform || out.Seed != in.Seed || out.Reason != in.Reason {
		t.Fatalf("header mangled: %+v", out)
	}
	if out.F.String() != f.String() {
		t.Fatalf("program mangled:\n%s", out.F)
	}
}

// TestCorpusRejectsHeaderlessFile guards against committing a bare
// .ir file without its cell coordinates.
func TestCorpusRejectsHeaderlessFile(t *testing.T) {
	_, err := DecodeCase("func f() {\nb0:\n  ret\n}\n")
	if err == nil || !strings.Contains(err.Error(), "header") {
		t.Fatalf("want header error, got %v", err)
	}
}

// TestWriteCaseNumbersSequentially checks corpus file naming and that
// a written case loads back.
func TestWriteCaseNumbersSequentially(t *testing.T) {
	dir := t.TempDir()
	f := ir.MustParse("func f() {\nb0:\n  ret\n}\n")
	fl := Failure{
		Machine: "usage8", Cell: "chaitin", Transform: "identity",
		Seed: 1, Reason: "run-error: boom",
	}
	p1, err := WriteCase(dir, fl, f)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p1) != "001-chaitin-identity-run-error.ir" {
		t.Fatalf("unexpected name %s", filepath.Base(p1))
	}
	fl.Cell = "priority"
	p2, err := WriteCase(dir, fl, f)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p2) != "002-priority-identity-run-error.ir" {
		t.Fatalf("unexpected name %s", filepath.Base(p2))
	}
	cases, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 2 || cases[0].File != filepath.Base(p1) {
		t.Fatalf("load-back mismatch: %+v", cases)
	}
}

// TestReplayCaseRejectsUnknownCoordinates pins that renaming an
// allocator or machine cannot silently retire a reproducer.
func TestReplayCaseRejectsUnknownCoordinates(t *testing.T) {
	f := ir.MustParse("func f() {\nb0:\n  ret\n}\n")
	for _, c := range []CorpusCase{
		{Machine: "no-such-machine", Cell: "chaitin", Transform: "identity", F: f},
		{Machine: "usage8", Cell: "no-such-cell", Transform: "identity", F: f},
		{Machine: "usage8", Cell: "chaitin", Transform: "no-such-transform", F: f},
	} {
		if _, err := ReplayCase(c); err == nil {
			t.Fatalf("want error for %+v", c)
		}
	}
}
