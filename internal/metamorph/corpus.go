package metamorph

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"prefcolor/internal/ir"
	"prefcolor/internal/target"
)

// CorpusCase is one versioned reproducer: a shrunken program plus the
// exact matrix cell that once failed on it. Replaying the cell (and,
// for breadth, the whole matrix) must stay clean forever.
type CorpusCase struct {
	File      string // basename within the corpus directory
	Machine   string
	Cell      string
	Transform string
	Seed      int64
	Reason    string // reason recorded when the bug was found
	F         *ir.Func
}

// EncodeCase renders a reproducer in the textual IR syntax with a
// comment header carrying the cell coordinates, so ir.Parse reads the
// file back unmodified.
func EncodeCase(c CorpusCase) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; machine: %s\n", c.Machine)
	fmt.Fprintf(&sb, "; cell: %s\n", c.Cell)
	fmt.Fprintf(&sb, "; transform: %s\n", c.Transform)
	fmt.Fprintf(&sb, "; seed: %d\n", c.Seed)
	fmt.Fprintf(&sb, "; reason: %s\n", c.Reason)
	sb.WriteString(c.F.String())
	return sb.String()
}

// DecodeCase parses a corpus file produced by EncodeCase.
func DecodeCase(src string) (CorpusCase, error) {
	c := CorpusCase{}
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, ";") {
			continue
		}
		body := strings.TrimSpace(strings.TrimPrefix(line, ";"))
		key, val, ok := strings.Cut(body, ":")
		if !ok {
			continue
		}
		val = strings.TrimSpace(val)
		switch strings.TrimSpace(key) {
		case "machine":
			c.Machine = val
		case "cell":
			c.Cell = val
		case "transform":
			c.Transform = val
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return c, fmt.Errorf("metamorph: bad seed header %q: %w", val, err)
			}
			c.Seed = n
		case "reason":
			c.Reason = val
		}
	}
	f, err := ir.Parse(src)
	if err != nil {
		return c, err
	}
	c.F = f
	if c.Machine == "" || c.Cell == "" || c.Transform == "" {
		return c, fmt.Errorf("metamorph: corpus file missing machine/cell/transform header")
	}
	return c, nil
}

// LoadCorpus reads every .ir reproducer under dir, in name order. A
// missing directory is an empty corpus.
func LoadCorpus(dir string) ([]CorpusCase, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".ir") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var cases []CorpusCase
	for _, name := range names {
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		c, err := DecodeCase(string(src))
		if err != nil {
			return nil, fmt.Errorf("metamorph: corpus %s: %w", name, err)
		}
		c.File = name
		cases = append(cases, c)
	}
	return cases, nil
}

// WriteCase saves a shrunken failure as the next numbered reproducer
// under dir (creating it if needed) and returns the file path.
func WriteCase(dir string, fl Failure, shrunk *ir.Func) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	existing, err := LoadCorpus(dir)
	if err != nil {
		return "", err
	}
	// Filenames carry only the coarse leading token of the reason
	// (run-error categories are whole digit-stripped messages, far too
	// long for a path); the full reason lives in the file's header.
	head, _, _ := strings.Cut(fl.Reason, ":")
	slug := fmt.Sprintf("%03d-%s-%s-%s", len(existing)+1,
		sanitize(fl.Cell), sanitize(fl.Transform), sanitize(head))
	path := filepath.Join(dir, slug+".ir")
	c := CorpusCase{
		Machine: fl.Machine, Cell: fl.Cell, Transform: fl.Transform,
		Seed: fl.Seed, Reason: fl.Reason, F: shrunk,
	}
	return path, os.WriteFile(path, []byte(EncodeCase(c)), 0o644)
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '-'
		}
	}, s)
}

// ReplayCase re-runs a corpus case's recorded matrix cell and returns
// the violation reasons (nil when the invariant holds). Unknown
// machine or cell names are themselves errors: a renamed configuration
// must not silently retire a reproducer.
func ReplayCase(c CorpusCase) ([]string, error) {
	var m *target.Machine
	for _, mm := range Machines() {
		if mm.Name == c.Machine {
			m = mm
		}
	}
	if m == nil {
		return nil, fmt.Errorf("metamorph: corpus machine %q not in Machines()", c.Machine)
	}
	var cell Cell
	for _, cc := range Cells() {
		if cc.Name == c.Cell {
			cell = cc
		}
	}
	if cell.Alloc == nil {
		return nil, fmt.Errorf("metamorph: corpus cell %q not in Cells()", c.Cell)
	}
	known := c.Transform == "identity"
	for _, tr := range Transforms() {
		if tr.Name == c.Transform {
			known = true
		}
	}
	if !known {
		return nil, fmt.Errorf("metamorph: corpus transform %q not in Transforms()", c.Transform)
	}
	return replayCell(c.F, m, cell, c.Transform, c.Seed), nil
}
