package metamorph

import (
	"os"
	"strings"
	"testing"

	"prefcolor/internal/ir"
	"prefcolor/internal/workload"
)

// TestGenerateSeed77Corpus is a one-off generator run against the
// PRE-FIX allocator (the driver/selector fixes stashed) to shrink the
// two seed-77 bugs into committed corpus reproducers. Run manually
// with METAMORPH_GEN_CORPUS2=1.
func cellByName(t *testing.T, name string) Cell {
	t.Helper()
	for _, c := range Cells() {
		if c.Name == name {
			return c
		}
	}
	t.Fatalf("no cell %s", name)
	return Cell{}
}

func TestGenerateSeed77Corpus(t *testing.T) {
	if os.Getenv("METAMORPH_GEN_CORPUS2") == "" {
		t.Skip("set METAMORPH_GEN_CORPUS2=1 to regenerate")
	}
	dir := "testdata/corpus"
	m := Machines()[0]
	cell := cellByName(t, "pref-full+blocklocal")
	f := workload.GenerateRawFunc(workload.Fuzz(), m, 77)

	reasons := replayCell(f, m, cell, "identity", 77)
	if len(reasons) == 0 {
		t.Fatal("seed 77 no longer fails — run this against the pre-fix tree")
	}
	t.Logf("unshrunk reason: %s", reasons[0])

	// Bug (a): spill temporary re-spilled. Shrink pinned to its exact
	// (digit-stripped) error message.
	flA := Failure{Machine: m.Name, Cell: cell.Name, Transform: "identity", Seed: 77,
		Reason: reasons[0], F: f}
	smallA := ShrinkBudget(f, ReproducePredicate(flA), 3000)
	rA := replayCell(smallA, m, cell, "identity", 77)
	t.Logf("bug A shrunk %d -> %d instrs, reason %v", f.NumInstrs(), smallA.NumInstrs(), rA)
	flA.Reason = rA[0]
	pathA, err := WriteCase(dir, flA, smallA)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s:\n%s", pathA, smallA)

	// Bug (b): reload of a never-stored slot. Surfaced while shrinking
	// with a category-blind predicate (any run error); redo that drift
	// deliberately, then pin to whatever distinct error it lands on.
	loose := func(cand *ir.Func) bool {
		for _, r := range replayCell(cand, m, cell, "identity", 77) {
			if strings.HasPrefix(r, "run-error") {
				return true
			}
		}
		return false
	}
	smallB := ShrinkBudget(f, loose, 3000)
	rB := replayCell(smallB, m, cell, "identity", 77)
	if len(rB) == 0 {
		t.Fatal("loose shrink lost the failure")
	}
	t.Logf("bug B candidate %d instrs, reason %v", smallB.NumInstrs(), rB)
	if reasonCategory(rB[0]) == reasonCategory(reasons[0]) {
		t.Fatalf("loose shrink stayed on bug A; no bug-B reproducer derived")
	}
	flB := Failure{Machine: m.Name, Cell: cell.Name, Transform: "identity", Seed: 77,
		Reason: rB[0], F: smallB}
	smallB2 := ShrinkBudget(smallB, ReproducePredicate(flB), 1500)
	rB2 := replayCell(smallB2, m, cell, "identity", 77)
	t.Logf("bug B shrunk to %d instrs, reason %v", smallB2.NumInstrs(), rB2)
	flB.Reason = rB2[0]
	pathB, err := WriteCase(dir, flB, smallB2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s:\n%s", pathB, smallB2)
}
