// Benchmarks: one testing.B per figure panel of the paper's
// evaluation (the full tables come from cmd/figures), plus
// micro-benchmarks for the pipeline stages and each allocator.
//
// The figure benchmarks run a representative benchmark subset per
// iteration so that `go test -bench=.` stays tractable; pass
// -benchtime=1x for a single full measurement.
package prefcolor_test

import (
	"testing"

	"prefcolor"
	"prefcolor/internal/cfg"
	"prefcolor/internal/core"
	"prefcolor/internal/ig"
	"prefcolor/internal/ir"
	"prefcolor/internal/liveness"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/ssa"
	"prefcolor/internal/target"
	"prefcolor/internal/workload"
)

// Figure 9: coalescing and spill ratios against the Chaitin base.

func benchmarkFigure9(b *testing.B, k int) {
	for i := 0; i < b.N; i++ {
		rows, err := prefcolor.Figure9(k, "jess", "mpegaudio")
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFigure9Panels_ab_16regs(b *testing.B) { benchmarkFigure9(b, 16) }
func BenchmarkFigure9Panels_cd_32regs(b *testing.B) { benchmarkFigure9(b, 32) }

// Figure 10: estimated execution cost under the three configurations.

func benchmarkFigure10(b *testing.B, k int) {
	for i := 0; i < b.N; i++ {
		if _, err := prefcolor.Figure10(k, "jess", "mpegaudio"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10Panel_a_16regs(b *testing.B) { benchmarkFigure10(b, 16) }
func BenchmarkFigure10Panel_b_24regs(b *testing.B) { benchmarkFigure10(b, 24) }
func BenchmarkFigure10Panel_c_32regs(b *testing.B) { benchmarkFigure10(b, 32) }

// Figure 11: relative cost against full preferences at 24 registers.

func BenchmarkFigure11_24regs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := prefcolor.Figure11("jess", "db"); err != nil {
			b.Fatal(err)
		}
	}
}

// Per-allocator cost on one mid-size workload function.

func benchFunc(b *testing.B) (*ir.Func, *target.Machine) {
	b.Helper()
	m := target.UsageModel(16)
	p, err := workload.ByName("javac")
	if err != nil {
		b.Fatal(err)
	}
	return workload.Generate(p, m)[0], m
}

func BenchmarkAllocator(b *testing.B) {
	f, m := benchFunc(b)
	for _, name := range prefcolor.AllocatorNames() {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				alloc, err := prefcolor.AllocatorByName(name)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := regalloc.Run(f, m, alloc, regalloc.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Pipeline micro-benchmarks.

func BenchmarkRenumber(b *testing.B) {
	f, _ := benchFunc(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := f.Clone()
		if _, err := ig.Renumber(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterferenceBuild(b *testing.B) {
	f, m := benchFunc(b)
	g := f.Clone()
	if _, err := ig.Renumber(g); err != nil {
		b.Fatal(err)
	}
	loops := cfg.FindLoops(g, cfg.NewDomTree(g))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ig.Build(g, m, loops); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLiveness(b *testing.B) {
	f, _ := benchFunc(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		liveness.Compute(f)
	}
}

func BenchmarkSSARoundTrip(b *testing.B) {
	f, _ := benchFunc(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := f.Clone()
		ssa.Build(g)
		ssa.Destruct(g)
	}
}

func BenchmarkCPGBuild(b *testing.B) {
	f, m := benchFunc(b)
	g := f.Clone()
	if _, err := ig.Renumber(g); err != nil {
		b.Fatal(err)
	}
	ctxTemplate, err := regalloc.NewContext(g, m, nil)
	if err != nil {
		b.Fatal(err)
	}
	_ = ctxTemplate
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ctx, err := regalloc.NewContext(g, m, nil)
		if err != nil {
			b.Fatal(err)
		}
		stack, pot := core.SimplifyForBench(ctx.Graph, ctx.K())
		b.StartTimer()
		if _, err := core.BuildCPG(ctx.Graph, stack, pot, ctx.K()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkloadGenerate(b *testing.B) {
	m := target.UsageModel(16)
	p, err := workload.ByName("compress")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		workload.Generate(p, m)
	}
}
